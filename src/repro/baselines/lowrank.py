"""Two-factor low-rank embedding (Ghaemmaghami et al. 2020 style).

``W ~= A @ B`` with ``A: (num_rows, r)`` and ``B: (r, dim)``. A lookup is
one small gather plus a ``(bag, r) @ (r, dim)`` GEMM, and the parameter
count is ``num_rows*r + r*dim`` — so unlike TT, compression is capped at
``dim / r`` and cannot reach the orders of magnitude TT offers at equal
rank. The baseline bench shows exactly that ceiling.
"""

from __future__ import annotations

import numpy as np

from repro.ops.embedding import segment_sum
from repro.ops.module import Module, Parameter
from repro.tt.kernels import scatter_add_rows
from repro.utils.dtypes import result_dtype
from repro.utils.seeding import as_rng
from repro.utils.validation import check_csr

__all__ = ["LowRankEmbeddingBag"]


class LowRankEmbeddingBag(Module):
    """Pooled embedding lookup through a rank-``r`` factorization."""

    def __init__(self, num_rows: int, dim: int, rank: int, *, mode: str = "sum",
                 rng: int | None | np.random.Generator = None,
                 name: str = "lowrank_emb"):
        if rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        if rank > dim:
            raise ValueError(
                f"rank ({rank}) above dim ({dim}) stores more than the dense table"
            )
        if mode not in ("sum", "mean"):
            raise ValueError(f"mode must be 'sum' or 'mean', got {mode!r}")
        rng = as_rng(rng)
        self.num_rows = num_rows
        self.dim = dim
        self.rank = rank
        self.mode = mode
        # Scale so W = A @ B matches the DLRM default Uniform(±1/sqrt(M))
        # variance: Var(W_ij) = rank * var_a * var_b = 1/(3M).
        entry_std = (1.0 / (3.0 * num_rows * rank)) ** 0.25
        self.factor_a = Parameter(
            rng.normal(0.0, entry_std, size=(num_rows, rank)),
            name=f"{name}.A", sparse=True,
        )
        self.factor_b = Parameter(
            rng.normal(0.0, entry_std, size=(rank, dim)), name=f"{name}.B"
        )
        self._cache: dict | None = None
        self._did_backward = False

    @property
    def dtype(self) -> np.dtype:
        """Floating dtype of the factors (follows the policy at build time)."""
        return self.factor_a.data.dtype

    def forward(self, indices: np.ndarray, offsets: np.ndarray | None = None,
                per_sample_weights: np.ndarray | None = None) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        if offsets is None:
            offsets = np.arange(indices.size + 1, dtype=np.int64)
        indices, offsets = check_csr(indices, offsets, self.num_rows)
        alpha = None
        if per_sample_weights is not None:
            alpha = np.asarray(per_sample_weights,
                               dtype=result_dtype(self.factor_a.data)).reshape(-1)
            if alpha.shape[0] != indices.shape[0]:
                raise ValueError("per_sample_weights must match indices in length")
        a_rows = self.factor_a.data[indices]  # (n, r)
        weighted = a_rows if alpha is None else a_rows * alpha[:, None]
        # Pool in factor space first (r << dim), then one GEMM per batch.
        pooled_a = segment_sum(weighted, offsets)  # (m, r)
        counts = np.diff(offsets)
        if self.mode == "mean":
            scale = np.asarray(np.where(counts > 0, counts, 1),
                               dtype=pooled_a.dtype)
            pooled_a = pooled_a / scale[:, None]
        out = pooled_a @ self.factor_b.data
        self._cache = {
            "indices": indices, "offsets": offsets, "alpha": alpha,
            "counts": counts, "pooled_a": pooled_a,
        }
        self._did_backward = False
        return out

    __call__ = forward

    def backward(self, grad_out: np.ndarray) -> None:
        """Accumulate factor gradients; consumes the forward cache.

        A second ``backward`` for the same forward raises instead of
        silently double-accumulating (shared zoo contract).
        """
        if self._cache is None:
            if self._did_backward:
                raise RuntimeError(
                    "backward called twice for one forward; factor gradients "
                    "would double-accumulate — run forward again first"
                )
            raise RuntimeError("backward called before forward")
        c = self._cache
        grad_out = np.asarray(grad_out, dtype=self.dtype)
        # dB = pooled_a^T dO
        self.factor_b.grad += c["pooled_a"].T @ grad_out
        # d pooled_a = dO B^T, then un-pool to per-index gradients.
        grad_pooled = grad_out @ self.factor_b.data.T  # (m, r)
        counts = c["counts"]
        if self.mode == "mean":
            scale = np.asarray(np.where(counts > 0, counts, 1),
                               dtype=grad_pooled.dtype)
            grad_pooled = grad_pooled / scale[:, None]
        bag_ids = np.repeat(np.arange(len(counts)), counts)
        grad_rows = grad_pooled[bag_ids]
        if c["alpha"] is not None:
            grad_rows = grad_rows * c["alpha"][:, None]
        scatter_add_rows(self.factor_a.grad, c["indices"], grad_rows)
        self.factor_a.record_touched(c["indices"])
        self._cache = None
        self._did_backward = True

    def lookup(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        return self.factor_a.data[indices] @ self.factor_b.data

    def materialize(self) -> np.ndarray:
        """Dense ``num_rows x dim`` table (analysis only)."""
        return self.factor_a.data @ self.factor_b.data

    def num_parameters(self) -> int:
        return self.factor_a.size + self.factor_b.size

    def compression_ratio(self) -> float:
        return (self.num_rows * self.dim) / self.num_parameters()
