"""Fault-tolerant training runtime: injection, checkpointing, recovery.

Production DLRM training of the scale TT-Rec targets runs for days across
many hosts, where worker loss and numeric blow-ups are routine. This
package makes every training and benchmark run in the repo survivable:

- :class:`FaultInjector` — seeded, deterministic fault source with named
  injection sites wired into the trainer, the distributed collectives and
  the embedding cache (see :mod:`repro.reliability.fault_injection`);
- :class:`CheckpointManager` — atomic, checksummed, retained checkpoints
  carrying model + optimizer + RNG + module-extra state, so a killed run
  resumes bit-exactly (:mod:`repro.reliability.checkpoint`);
- :class:`DivergenceGuard` / :class:`GuardPolicy` — skip / scrub /
  LR-backoff / rollback recovery ladder replacing the trainer's old
  fail-fast :class:`FloatingPointError` (:mod:`repro.reliability.guard`).

Degraded-mode collectives (checksum verify, bounded retry, survivor
renormalisation) live on
:class:`~repro.distributed.collectives.Communicator` itself and light up
when it is given an injector. See ``docs/RELIABILITY.md`` for the full
story and ``tests/test_reliability.py`` for the chaos suite.
"""

from repro.reliability.checkpoint import (
    CheckpointError,
    CheckpointManager,
    LoadedCheckpoint,
)
from repro.reliability.fault_injection import KNOWN_SITES, FaultInjector, FaultSpec
from repro.reliability.guard import DivergenceGuard, GuardPolicy, scrub_non_finite

__all__ = [
    "FaultInjector",
    "FaultSpec",
    "KNOWN_SITES",
    "CheckpointManager",
    "CheckpointError",
    "LoadedCheckpoint",
    "DivergenceGuard",
    "GuardPolicy",
    "scrub_non_finite",
]
