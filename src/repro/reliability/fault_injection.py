"""Deterministic fault injection for chaos-testing the training stack.

A single seeded :class:`FaultInjector` is shared by every instrumented
component (:class:`~repro.training.trainer.Trainer`,
:class:`~repro.distributed.collectives.Communicator`,
:class:`~repro.cache.cached_embedding.CachedTTEmbeddingBag`). Each
component asks the injector whether a fault fires at a named *site*; all
draws come from one private PCG64 stream, so a fixed seed plus a fixed
call sequence reproduces the exact same fault schedule run after run —
chaos tests are as repeatable as clean ones.

Instrumented sites
------------------
==========================  ====================================================
``trainer.grad``            non-finite entries injected into the loss gradient
``collective.payload``      bit/value corruption of a transmitted buffer
``collective.drop``         a worker silently drops out of one collective
``collective.straggler``    a worker is slow (counted, never actually slept)
``cache.row``               one uncompressed cached embedding row is poisoned
``serving.request``         an inbound request's dense payload is corrupted
``serving.queue``           a queued request is lost (shed as a queue fault)
``serving.backend``         an embedding backend's pooled output is poisoned
``shard.crash``             a serving shard worker dies until restarted
``shard.hang``              a shard stops answering (heartbeats + dispatches)
``shard.slow``              a shard's next dispatch exceeds its deadline
``shard.net_drop``          one router<->shard message is lost in transit
``dist.crash``              a training worker dies until supervised restart
``dist.hang``               a training worker stops answering (heartbeats +
                            gradient dispatches) for a bounded sim window
``dist.slow``               a training worker's next step is a straggler
``dist.net_drop``           one supervisor<->worker message is lost
==========================  ====================================================

Sites are just strings: components probe unconditionally and unregistered
sites never fire, so attaching an injector with a subset of specs enables
exactly that subset of fault classes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.telemetry import emit_event
from repro.utils.seeding import as_rng

__all__ = ["FaultSpec", "FaultInjector", "KNOWN_SITES"]

KNOWN_SITES = (
    "trainer.grad",
    "collective.payload",
    "collective.drop",
    "collective.straggler",
    "cache.row",
    "serving.request",
    "serving.queue",
    "serving.backend",
    "shard.crash",
    "shard.hang",
    "shard.slow",
    "shard.net_drop",
    "dist.crash",
    "dist.hang",
    "dist.slow",
    "dist.net_drop",
)

_KINDS = ("nan", "inf", "zero", "scale", "bitflip")


@dataclass(frozen=True)
class FaultSpec:
    """One fault class: where it fires, how often, and what it does.

    Parameters
    ----------
    site:
        Name of the injection point (see module docstring).
    probability:
        Per-probe firing probability in ``[0, 1]``.
    kind:
        Corruption applied to the target array when the fault carries a
        payload: ``"nan"``/``"inf"`` overwrite entries, ``"zero"`` clears
        them, ``"scale"`` multiplies by ``magnitude``, and ``"bitflip"``
        flips one random mantissa/exponent bit of a float64 entry (the
        model of an undetected link error a checksum must catch).
    magnitude:
        Factor for ``kind="scale"``.
    max_elements:
        Entries corrupted per firing (clipped to the array size).
    """

    site: str
    probability: float
    kind: str = "nan"
    magnitude: float = 1e30
    max_elements: int = 1

    def __post_init__(self):
        if not (0.0 <= self.probability <= 1.0):
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if self.max_elements < 1:
            raise ValueError(
                f"max_elements must be >= 1, got {self.max_elements}"
            )


class FaultInjector:
    """Seeded, site-addressed fault source with per-site counters.

    Usage::

        inj = FaultInjector(seed=0)
        inj.register("trainer.grad", 0.02)                # NaN gradients
        inj.register("collective.payload", 0.05, kind="bitflip")
        trainer = Trainer(model, guard=DivergenceGuard(), injector=inj)

    ``attempts`` counts probes per site, ``fired`` counts actual faults;
    both are plain dicts for direct inclusion in benchmark reports.
    """

    def __init__(self, seed: int | None | np.random.Generator = 0,
                 specs: tuple[FaultSpec, ...] = ()):
        self._rng = as_rng(seed)
        self._specs: dict[str, FaultSpec] = {}
        self.attempts: dict[str, int] = {}
        self.fired: dict[str, int] = {}
        for spec in specs:
            self.register(spec)

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #

    def register(self, site: str | FaultSpec, probability: float | None = None,
                 *, kind: str = "nan", magnitude: float = 1e30,
                 max_elements: int = 1) -> "FaultInjector":
        """Enable a fault class; returns ``self`` for chaining."""
        if isinstance(site, FaultSpec):
            spec = site
        else:
            if probability is None:
                raise ValueError("probability is required when site is a name")
            spec = FaultSpec(site, probability, kind=kind, magnitude=magnitude,
                             max_elements=max_elements)
        self._specs[spec.site] = spec
        self.attempts.setdefault(spec.site, 0)
        self.fired.setdefault(spec.site, 0)
        return self

    def spec(self, site: str) -> FaultSpec | None:
        return self._specs.get(site)

    @property
    def sites(self) -> tuple[str, ...]:
        return tuple(self._specs)

    # ------------------------------------------------------------------ #
    # Probing
    # ------------------------------------------------------------------ #

    def draw(self, site: str) -> FaultSpec | None:
        """Probe a site: returns its spec when the fault fires, else None.

        Unregistered sites are free (no RNG consumed), so components can
        probe unconditionally.
        """
        spec = self._specs.get(site)
        if spec is None:
            return None
        self.attempts[site] += 1
        if self._rng.random() >= spec.probability:
            return None
        self.fired[site] += 1
        emit_event("fault.fired", site=site, kind=spec.kind,
                   count=self.fired[site])
        return spec

    def fires(self, site: str) -> bool:
        """True when a registered fault fires at ``site`` this probe."""
        return self.draw(site) is not None

    def choose(self, n: int) -> int:
        """Deterministic uniform choice in ``[0, n)`` from the fault stream."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        return int(self._rng.integers(0, n))

    # ------------------------------------------------------------------ #
    # Payload corruption
    # ------------------------------------------------------------------ #

    def apply(self, spec: FaultSpec, array: np.ndarray) -> None:
        """Corrupt ``array`` in place according to ``spec``."""
        flat = array.reshape(-1)
        if flat.size == 0:
            return
        k = min(spec.max_elements, flat.size)
        picks = self._rng.choice(flat.size, size=k, replace=False)
        if spec.kind == "nan":
            flat[picks] = np.nan
        elif spec.kind == "inf":
            flat[picks] = np.inf
        elif spec.kind == "zero":
            flat[picks] = 0.0
        elif spec.kind == "scale":
            flat[picks] *= spec.magnitude
        elif spec.kind == "bitflip":
            bits = self._rng.integers(0, 64, size=k)
            if flat.dtype == np.float64 and flat.flags.c_contiguous:
                raw = flat.view(np.uint64)
                raw[picks] ^= np.uint64(1) << bits.astype(np.uint64)
            else:  # non-float64 payloads: degrade to a NaN overwrite
                flat[picks] = np.nan

    def corrupt(self, site: str, array: np.ndarray) -> bool:
        """Probe ``site`` and, on firing, corrupt ``array`` in place.

        Returns whether a fault was injected.
        """
        spec = self.draw(site)
        if spec is None:
            return False
        self.apply(spec, array)
        return True

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    @property
    def total_fired(self) -> int:
        return sum(self.fired.values())

    def counters(self) -> dict[str, dict[str, int]]:
        """Per-site ``{"attempts": ..., "fired": ...}`` (report-ready copy)."""
        return {
            site: {"attempts": self.attempts[site], "fired": self.fired[site]}
            for site in self._specs
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FaultInjector(sites={list(self._specs)}, "
                f"fired={self.total_fired})")
