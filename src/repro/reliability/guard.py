"""Divergence guard: skip, back off, scrub, roll back — don't crash.

The seed trainer raised a bare :class:`FloatingPointError` on the first
non-finite loss, turning every transient numeric blow-up into a dead
multi-hour run. :class:`DivergenceGuard` replaces that with a bounded
recovery ladder, configured by :class:`GuardPolicy`:

1. **Skip** — a batch with a non-finite loss or loss-gradient is dropped
   before it can touch the parameters (no backward, no optimizer step).
2. **Scrub** — any parameter state that is already non-finite is repaired:
   modules exposing a ``scrub()`` hook fix themselves (a cached embedding
   re-materialises poisoned rows from its TT cores), remaining non-finite
   entries are zeroed.
3. **LR backoff** — ``backoff_after`` *consecutive* non-finite events
   halve (``lr_backoff``) the optimizer's learning rate, at most
   ``max_backoffs`` times; after ``recovery_steps`` consecutive healthy
   steps the original rate is restored. Isolated transient faults (one
   bad batch between healthy ones) never touch the learning rate.
4. **Rollback** — when the smoothed loss spikes to ``spike_factor`` times
   its best value for ``spike_patience`` consecutive steps, the trainer
   restores the newest checkpoint (parameters + optimizer + RNG) and
   continues forward through the stream.

The ladder is bounded: more than ``max_skips`` skipped batches raises
:class:`FloatingPointError` just like the unguarded trainer, so a truly
broken run still fails loudly instead of spinning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.serialization import named_modules
from repro.ops.module import Module
from repro.telemetry import emit_event

__all__ = ["GuardPolicy", "DivergenceGuard", "scrub_non_finite"]


def scrub_non_finite(model: Module) -> int:
    """Repair non-finite parameter state in place; returns entries fixed.

    Modules with a ``scrub()`` method repair themselves first (and report
    how many values they fixed); any parameter entries still non-finite
    afterwards are zeroed — the neutral value for both weights and
    accumulated gradients.
    """
    repaired = 0
    for _, mod in named_modules(model):
        hook = getattr(mod, "scrub", None)
        if callable(hook):
            repaired += int(hook())
    for p in model.parameters():
        bad = ~np.isfinite(p.data)
        if bad.any():
            p.data[bad] = 0.0
            repaired += int(bad.sum())
    return repaired


@dataclass
class GuardPolicy:
    """Knobs for :class:`DivergenceGuard` (defaults suit the chaos suite).

    ``on_nonfinite="raise"`` reproduces the legacy fail-fast behaviour
    while keeping the spike/rollback machinery available.
    """

    on_nonfinite: str = "skip"  # "skip" | "raise"
    max_skips: int = 50
    scrub: bool = True
    lr_backoff: float = 0.5
    backoff_after: int = 2  # consecutive failures before the first backoff
    max_backoffs: int = 3
    recovery_steps: int = 25
    spike_window: int = 25
    spike_factor: float = 2.5
    spike_patience: int = 10

    def __post_init__(self):
        if self.on_nonfinite not in ("skip", "raise"):
            raise ValueError(
                f"on_nonfinite must be 'skip' or 'raise', got {self.on_nonfinite!r}"
            )
        if not (0.0 < self.lr_backoff < 1.0):
            raise ValueError(
                f"lr_backoff must be in (0, 1), got {self.lr_backoff}"
            )
        if self.spike_factor <= 1.0:
            raise ValueError(
                f"spike_factor must be > 1, got {self.spike_factor}"
            )


class DivergenceGuard:
    """Stateful recovery policy driven by the trainer.

    The trainer calls :meth:`admit` with each batch's loss and loss
    gradient before backward, and :meth:`wants_rollback` with the loss
    history after each step. ``events`` accumulates per-event counters
    (skipped batches, backoffs, restores, scrubbed values, rollbacks) for
    benchmark reports.
    """

    def __init__(self, policy: GuardPolicy | None = None):
        self.policy = policy if policy is not None else GuardPolicy()
        self.events = {
            "skipped_batches": 0,
            "lr_backoffs": 0,
            "lr_restores": 0,
            "scrubbed_values": 0,
            "rollbacks": 0,
        }
        self._healthy_streak = 0
        self._failure_streak = 0
        self._active_backoffs = 0
        self._base_lr: float | None = None
        self._best_smoothed = np.inf
        self._spike_run = 0

    # ------------------------------------------------------------------ #

    def admit(self, loss: float, grad: np.ndarray, *, model: Module | None = None,
              optimizer=None) -> bool:
        """Gate one step: True -> apply the update, False -> skip the batch."""
        pol = self.policy
        if np.isfinite(loss) and bool(np.all(np.isfinite(grad))):
            self._healthy_streak += 1
            self._failure_streak = 0
            if (self._active_backoffs and optimizer is not None
                    and self._healthy_streak >= pol.recovery_steps):
                optimizer.lr = self._base_lr
                self._active_backoffs = 0
                self.events["lr_restores"] += 1
                emit_event("guard.lr_restore", lr=float(optimizer.lr))
            return True
        if pol.on_nonfinite == "raise":
            raise FloatingPointError(
                f"training diverged: loss={loss!r}; lower the learning rate "
                "or check the input data for non-finite values"
            )
        self._healthy_streak = 0
        self._failure_streak += 1
        self.events["skipped_batches"] += 1
        emit_event("guard.skip", loss=float(loss),
                   failure_streak=self._failure_streak)
        if self.events["skipped_batches"] > pol.max_skips:
            raise FloatingPointError(
                f"training diverged: more than {pol.max_skips} batches "
                "produced non-finite losses/gradients under the guard policy"
            )
        if pol.scrub and model is not None:
            scrubbed = scrub_non_finite(model)
            self.events["scrubbed_values"] += scrubbed
            if scrubbed:
                emit_event("guard.scrub", values=scrubbed)
        if (optimizer is not None
                and self._failure_streak >= pol.backoff_after
                and self._active_backoffs < pol.max_backoffs):
            if self._base_lr is None:
                self._base_lr = optimizer.lr
            optimizer.lr *= pol.lr_backoff
            self._active_backoffs += 1
            self.events["lr_backoffs"] += 1
            emit_event("guard.lr_backoff", lr=float(optimizer.lr),
                       active_backoffs=self._active_backoffs)
        return False

    def wants_rollback(self, losses: list[float]) -> bool:
        """Sustained-spike detector over the smoothed loss trace."""
        w = self.policy.spike_window
        if len(losses) < 2 * w:
            return False
        smoothed = float(np.mean(losses[-w:]))
        self._best_smoothed = min(self._best_smoothed, smoothed)
        if smoothed > self.policy.spike_factor * self._best_smoothed:
            self._spike_run += 1
            if self._spike_run >= self.policy.spike_patience:
                self._spike_run = 0
                self.events["rollbacks"] += 1
                emit_event("guard.rollback", smoothed_loss=smoothed,
                           best_smoothed=float(self._best_smoothed))
                return True
        else:
            self._spike_run = 0
        return False

    def notify_rollback(self) -> None:
        """Reset spike tracking after the trainer restored a checkpoint."""
        self._spike_run = 0
        self._best_smoothed = np.inf
