"""Atomic, checksummed training checkpoints with retention and resume.

A checkpoint is a pair of files in the manager's directory::

    ckpt_00000100.npz    payload: model / optimizer / module-extra arrays
    ckpt_00000100.json   manifest: step, RNG state, scalars, payload sha256

Both are written to a temporary name in the same directory, fsynced, and
moved into place with ``os.replace`` — a crash at any point leaves either
the previous checkpoint intact or a stray ``*.tmp`` that is ignored. The
manifest is written *after* the payload, so a payload without a manifest
(crash between the two renames) is treated as absent, and
:meth:`CheckpointManager.latest_step` verifies the payload checksum before
trusting a manifest, so a torn or truncated payload never clobbers a
resume — the manager falls back to the newest checkpoint that verifies.

Payload key namespaces (``/``-separated, chosen because parameter keys
already contain ``:``):

- ``model/<key>``        — :func:`repro.models.serialization.state_dict` keys;
- ``opt/<key>``          — optimizer ``state_dict()`` arrays;
- ``extra/<path>/<key>`` — per-module non-parameter arrays from
  ``extra_state()`` hooks (e.g. the LFU tracker of a cached embedding),
  addressed by :func:`repro.models.serialization.named_modules` paths.

Scalars from the same sources live in the JSON manifest, which also
records the full loss history (so a resumed
:class:`~repro.training.trainer.TrainResult` is seamless) and, when a
:class:`numpy.random.Generator` is supplied, its bit-generator state —
everything needed for a killed run to resume bit-exactly.

Shard-delta checkpoints (elastic training)
------------------------------------------
The elastic runtime checkpoints each worker's *owned slice* of the
replicated model instead of the whole thing: worker ``w`` saves only the
parameters assigned to it (by
:func:`repro.distributed.model_parallel.partition_parameters`), plus the
optimizer slots of exactly those parameters, as a separate pair::

    ckpt-s2_00000100.npz / ckpt-s2_00000100.json

Shard files use the ``{prefix}-s{shard}`` sub-prefix, so they never
collide with (or shadow) the dense ``{prefix}_{step}`` series — the
``steps()`` regex cannot match them. Together the K shard pairs at one
step cover the whole model, which is what lets a supervisor rebuild a
*lost* worker's replica from the last common shard step
(:meth:`CheckpointManager.latest_common_shard_step`) without touching
any survivor's state: :meth:`restore_shard` writes only the shard's
parameters and merges only the shard's optimizer slots.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass

import numpy as np

from repro.models.serialization import (load_state_dict, named_modules,
                                        parameter_keys, state_dict)
from repro.ops.module import Module

__all__ = ["CheckpointManager", "CheckpointError", "LoadedCheckpoint"]

FORMAT_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint is missing, torn, or fails checksum verification."""


@dataclass
class LoadedCheckpoint:
    """One verified checkpoint pulled back into memory."""

    step: int
    path: str
    manifest: dict
    arrays: dict[str, np.ndarray]

    @property
    def losses(self) -> list[float]:
        return [float(x) for x in (self.manifest.get("losses") or [])]


def _sha256_file(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _atomic_write(path: str, writer) -> None:
    """Write via ``writer(fh)`` to ``path + ".tmp"``, fsync, then replace."""
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        writer(fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


class CheckpointManager:
    """Rolling window of verified checkpoints for one training run.

    Parameters
    ----------
    directory:
        Where checkpoint pairs live (created if missing).
    keep:
        Retention: only the newest ``keep`` checkpoints survive a save.
    prefix:
        File-name prefix, useful when several runs share a directory.
    """

    def __init__(self, directory: str | os.PathLike, *, keep: int = 3,
                 prefix: str = "ckpt"):
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = os.fspath(directory)
        self.keep = keep
        self.prefix = prefix
        os.makedirs(self.directory, exist_ok=True)

    # ------------------------------------------------------------------ #
    # Paths and discovery
    # ------------------------------------------------------------------ #

    def payload_path(self, step: int) -> str:
        return os.path.join(self.directory, f"{self.prefix}_{step:08d}.npz")

    def manifest_path(self, step: int) -> str:
        return os.path.join(self.directory, f"{self.prefix}_{step:08d}.json")

    def steps(self) -> list[int]:
        """Steps with both files present (ascending; not yet verified)."""
        pattern = re.compile(rf"^{re.escape(self.prefix)}_(\d+)\.json$")
        found = []
        for entry in os.listdir(self.directory):
            m = pattern.match(entry)
            if m:
                step = int(m.group(1))
                if os.path.exists(self.payload_path(step)):
                    found.append(step)
        return sorted(found)

    def verify(self, step: int) -> bool:
        """True when ``step``'s manifest parses and its payload checksums."""
        try:
            with open(self.manifest_path(step)) as fh:
                manifest = json.load(fh)
        except (OSError, ValueError):
            return False
        expected = manifest.get("sha256")
        if not expected:
            return False
        try:
            return _sha256_file(self.payload_path(step)) == expected
        except OSError:
            return False

    def latest_step(self) -> int | None:
        """Newest step that passes verification (torn writes are skipped)."""
        for step in reversed(self.steps()):
            if self.verify(step):
                return step
        return None

    # ------------------------------------------------------------------ #
    # Save
    # ------------------------------------------------------------------ #

    def save(self, step: int, model: Module, *, optimizer=None,
             rng: np.random.Generator | None = None,
             losses: list[float] | None = None) -> str:
        """Write one checkpoint atomically; returns the payload path.

        Captures the model's parameters, the optimizer's ``state_dict()``
        (arrays into the payload, scalars into the manifest), every
        module's ``extra_state()`` hook, the RNG bit-generator state, and
        the loss history.
        """
        if step < 0:
            raise ValueError(f"step must be >= 0, got {step}")
        arrays: dict[str, np.ndarray] = {
            f"model/{key}": value for key, value in state_dict(model).items()
        }
        opt_scalars: dict[str, float] = {}
        if optimizer is not None:
            for key, value in optimizer.state_dict().items():
                if isinstance(value, np.ndarray):
                    arrays[f"opt/{key}"] = value
                else:
                    opt_scalars[key] = value
        extra_scalars: dict[str, dict] = {}
        for path, mod in named_modules(model):
            hook = getattr(mod, "extra_state", None)
            if not callable(hook):
                continue
            for key, value in hook().items():
                if isinstance(value, np.ndarray):
                    arrays[f"extra/{path}/{key}"] = value
                else:
                    extra_scalars.setdefault(path, {})[key] = value

        payload = self.payload_path(step)
        _atomic_write(payload, lambda fh: np.savez_compressed(fh, **arrays))
        manifest = {
            "format": FORMAT_VERSION,
            "step": int(step),
            "payload": os.path.basename(payload),
            "sha256": _sha256_file(payload),
            "optimizer": {
                "type": type(optimizer).__name__ if optimizer is not None else None,
                "scalars": opt_scalars,
            },
            "rng": None if rng is None else rng.bit_generator.state,
            "losses": None if losses is None else [float(x) for x in losses],
            "extra": extra_scalars,
        }
        body = json.dumps(manifest, indent=1).encode()
        _atomic_write(self.manifest_path(step), lambda fh: fh.write(body))
        self._prune()
        return payload

    def _prune(self) -> None:
        for step in self.steps()[: -self.keep] if self.keep else []:
            for path in (self.payload_path(step), self.manifest_path(step)):
                try:
                    os.remove(path)
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass

    # ------------------------------------------------------------------ #
    # Load / restore
    # ------------------------------------------------------------------ #

    def load(self, step: int | None = None) -> LoadedCheckpoint:
        """Read and verify one checkpoint (the newest valid by default)."""
        if step is None:
            step = self.latest_step()
            if step is None:
                raise CheckpointError(
                    f"no valid checkpoint found in {self.directory!r}"
                )
        elif not self.verify(step):
            raise CheckpointError(
                f"checkpoint step {step} in {self.directory!r} is missing "
                "or fails checksum verification"
            )
        with open(self.manifest_path(step)) as fh:
            manifest = json.load(fh)
        with np.load(self.payload_path(step)) as archive:
            arrays = {name: archive[name] for name in archive.files}
        return LoadedCheckpoint(step=int(manifest["step"]),
                                path=self.payload_path(step),
                                manifest=manifest, arrays=arrays)

    def restore(self, model: Module, *, optimizer=None,
                rng: np.random.Generator | None = None,
                step: int | None = None) -> LoadedCheckpoint:
        """Load a checkpoint back into ``model``/``optimizer``/``rng``.

        The inverse of :meth:`save`; returns the loaded checkpoint so the
        caller can pick up ``step`` and ``losses``.
        """
        ck = self.load(step)
        model_state = {
            key.split("/", 1)[1]: value
            for key, value in ck.arrays.items() if key.startswith("model/")
        }
        load_state_dict(model, model_state)
        if optimizer is not None:
            opt_state: dict = dict(ck.manifest["optimizer"]["scalars"])
            saved_type = ck.manifest["optimizer"]["type"]
            if saved_type is not None and saved_type != type(optimizer).__name__:
                raise CheckpointError(
                    f"checkpoint holds {saved_type} state but the trainer "
                    f"uses {type(optimizer).__name__}"
                )
            for key, value in ck.arrays.items():
                if key.startswith("opt/"):
                    opt_state[key.split("/", 1)[1]] = value
            if opt_state or saved_type is not None:
                optimizer.load_state_dict(opt_state)
        for path, mod in named_modules(model):
            hook = getattr(mod, "load_extra_state", None)
            if not callable(hook):
                continue
            extra: dict = dict(ck.manifest.get("extra", {}).get(path, {}))
            prefix = f"extra/{path}/"
            for key, value in ck.arrays.items():
                if key.startswith(prefix):
                    extra[key[len(prefix):]] = value
            if extra:
                hook(extra)
        if rng is not None and ck.manifest.get("rng") is not None:
            rng.bit_generator.state = ck.manifest["rng"]
        return ck

    # ------------------------------------------------------------------ #
    # Shard-delta checkpoints (elastic training)
    # ------------------------------------------------------------------ #

    def _shard_prefix(self, shard_id: int) -> str:
        return f"{self.prefix}-s{shard_id}"

    def shard_payload_path(self, shard_id: int, step: int) -> str:
        return os.path.join(
            self.directory, f"{self._shard_prefix(shard_id)}_{step:08d}.npz")

    def shard_manifest_path(self, shard_id: int, step: int) -> str:
        return os.path.join(
            self.directory, f"{self._shard_prefix(shard_id)}_{step:08d}.json")

    def shard_steps(self, shard_id: int) -> list[int]:
        """Steps with both shard files present (ascending; unverified)."""
        pattern = re.compile(
            rf"^{re.escape(self._shard_prefix(shard_id))}_(\d+)\.json$")
        found = []
        for entry in os.listdir(self.directory):
            m = pattern.match(entry)
            if m:
                step = int(m.group(1))
                if os.path.exists(self.shard_payload_path(shard_id, step)):
                    found.append(step)
        return sorted(found)

    def verify_shard(self, shard_id: int, step: int) -> bool:
        """True when the shard pair parses and its payload checksums."""
        try:
            with open(self.shard_manifest_path(shard_id, step)) as fh:
                manifest = json.load(fh)
        except (OSError, ValueError):
            return False
        expected = manifest.get("sha256")
        if not expected:
            return False
        try:
            return _sha256_file(
                self.shard_payload_path(shard_id, step)) == expected
        except OSError:
            return False

    def latest_common_shard_step(self, num_shards: int) -> int | None:
        """Newest step at which *every* shard's pair verifies.

        The restore point for a lost worker: the K shard deltas at this
        step cover the whole model. A shard whose save was torn (crash
        mid-checkpoint) pushes the common step back to the previous
        round, exactly like :meth:`latest_step` for dense checkpoints.
        """
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        common = set(self.shard_steps(0))
        for s in range(1, num_shards):
            common &= set(self.shard_steps(s))
        for step in sorted(common, reverse=True):
            if all(self.verify_shard(s, step) for s in range(num_shards)):
                return step
        return None

    def save_shard(self, step: int, shard_id: int, model: Module,
                   param_indices, *, optimizer=None) -> str:
        """Atomically checkpoint one worker's owned parameter slice.

        ``param_indices`` indexes into ``model.parameters()`` order (the
        same order :func:`repro.models.serialization.parameter_keys`
        walks). The payload holds those parameters plus the optimizer
        slot arrays keyed ``<slot>.<index>`` for exactly those indices;
        optimizer scalars (lr, eps, ...) ride in the manifest so any
        single shard can restore them.
        """
        if step < 0:
            raise ValueError(f"step must be >= 0, got {step}")
        if shard_id < 0:
            raise ValueError(f"shard_id must be >= 0, got {shard_id}")
        keys = parameter_keys(model)
        params = model.parameters()
        indices = sorted(int(i) for i in param_indices)
        for i in indices:
            if not (0 <= i < len(params)):
                raise ValueError(
                    f"param index {i} out of range (model has {len(params)})"
                )
        owned = set(indices)
        arrays: dict[str, np.ndarray] = {
            f"model/{keys[i]}": params[i].data.copy() for i in indices
        }
        opt_scalars: dict[str, float] = {}
        if optimizer is not None:
            for key, value in optimizer.state_dict().items():
                if isinstance(value, np.ndarray):
                    slot, _, idx = key.rpartition(".")
                    if slot and idx.isdigit() and int(idx) in owned:
                        arrays[f"opt/{key}"] = value
                else:
                    opt_scalars[key] = value
        payload = self.shard_payload_path(shard_id, step)
        _atomic_write(payload, lambda fh: np.savez_compressed(fh, **arrays))
        manifest = {
            "format": FORMAT_VERSION,
            "step": int(step),
            "shard": int(shard_id),
            "param_indices": indices,
            "payload": os.path.basename(payload),
            "sha256": _sha256_file(payload),
            "optimizer": {
                "type": type(optimizer).__name__ if optimizer is not None else None,
                "scalars": opt_scalars,
            },
        }
        body = json.dumps(manifest, indent=1).encode()
        _atomic_write(self.shard_manifest_path(shard_id, step),
                      lambda fh: fh.write(body))
        self._prune_shard(shard_id)
        return payload

    def _prune_shard(self, shard_id: int) -> None:
        for step in self.shard_steps(shard_id)[: -self.keep] if self.keep else []:
            for path in (self.shard_payload_path(shard_id, step),
                         self.shard_manifest_path(shard_id, step)):
                try:
                    os.remove(path)
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass

    def load_shard(self, shard_id: int, step: int) -> LoadedCheckpoint:
        """Read and verify one shard-delta pair."""
        if not self.verify_shard(shard_id, step):
            raise CheckpointError(
                f"shard {shard_id} checkpoint step {step} in "
                f"{self.directory!r} is missing or fails checksum "
                "verification"
            )
        with open(self.shard_manifest_path(shard_id, step)) as fh:
            manifest = json.load(fh)
        with np.load(self.shard_payload_path(shard_id, step)) as archive:
            arrays = {name: archive[name] for name in archive.files}
        return LoadedCheckpoint(step=int(manifest["step"]),
                                path=self.shard_payload_path(shard_id, step),
                                manifest=manifest, arrays=arrays)

    def restore_shard(self, model: Module, shard_id: int, step: int, *,
                      optimizer=None) -> LoadedCheckpoint:
        """Restore one shard's parameters (and optimizer slots) in place.

        Only the checkpointed slice is written: every other parameter of
        ``model`` and every other optimizer slot keeps its current bits,
        so restoring shard after shard into a rebuilt worker composes —
        and restoring one shard into a *live* replica cannot disturb the
        parameters owned by surviving workers.
        """
        ck = self.load_shard(shard_id, step)
        keys = parameter_keys(model)
        params = dict(zip(keys, model.parameters()))
        for key, value in ck.arrays.items():
            if not key.startswith("model/"):
                continue
            name = key.split("/", 1)[1]
            p = params.get(name)
            if p is None:
                raise CheckpointError(
                    f"shard {shard_id} checkpoint holds unknown parameter "
                    f"{name!r}"
                )
            if p.data.shape != value.shape:
                raise CheckpointError(
                    f"shape mismatch for {name!r}: model {p.data.shape}, "
                    f"checkpoint {value.shape}"
                )
            p.data[...] = value
        if optimizer is not None:
            saved_type = ck.manifest["optimizer"]["type"]
            if saved_type is not None and saved_type != type(optimizer).__name__:
                raise CheckpointError(
                    f"shard checkpoint holds {saved_type} state but the "
                    f"worker uses {type(optimizer).__name__}"
                )
            # Merge into the optimizer's *current* state: scalars + this
            # shard's slots change, every other slot round-trips through
            # state_dict()/load_state_dict() bit-identically.
            merged: dict = optimizer.state_dict()
            merged.update(ck.manifest["optimizer"]["scalars"])
            for key, value in ck.arrays.items():
                if key.startswith("opt/"):
                    merged[key.split("/", 1)[1]] = value
            if saved_type is not None:
                optimizer.load_state_dict(merged)
        return ck
