"""Multi-layer perceptron stack used for DLRM bottom/top towers."""

from __future__ import annotations

import numpy as np

from repro.ops.activations import ReLU, Sigmoid
from repro.ops.linear import Linear
from repro.ops.module import Module
from repro.utils.seeding import as_rng

__all__ = ["MLP"]


class MLP(Module):
    """A stack of Linear layers with ReLU between them.

    ``sizes`` follows the MLPerf-DLRM convention, e.g. ``[13, 512, 256, 64,
    16]`` for the Kaggle bottom tower. The final layer's activation is
    selectable: DLRM's top tower historically ends in a sigmoid folded into
    the loss, so the default here is linear output (``last="linear"``) and
    the loss applies the sigmoid — mirroring ``BCEWithLogits``.
    """

    def __init__(self, sizes: list[int], *, last: str = "linear",
                 rng: int | None | np.random.Generator = None, name: str = "mlp"):
        if len(sizes) < 2:
            raise ValueError(f"MLP needs at least [in, out] sizes, got {sizes}")
        if last not in ("linear", "relu", "sigmoid"):
            raise ValueError(f"last must be linear/relu/sigmoid, got {last!r}")
        rng = as_rng(rng)
        self.sizes = list(sizes)
        self.layers: list[Module] = []
        n_linear = len(sizes) - 1
        for i in range(n_linear):
            self.layers.append(
                Linear(sizes[i], sizes[i + 1], rng=rng, name=f"{name}.linear{i}")
            )
            if i < n_linear - 1:
                self.layers.append(ReLU())
        if last == "relu":
            self.layers.append(ReLU())
        elif last == "sigmoid":
            self.layers.append(Sigmoid())

    @property
    def in_features(self) -> int:
        return self.sizes[0]

    @property
    def out_features(self) -> int:
        return self.sizes[-1]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    __call__ = forward
