"""Fully-connected layer with manual backward."""

from __future__ import annotations

import numpy as np

from repro.ops.module import Module, Parameter
from repro.utils.dtypes import default_dtype
from repro.utils.seeding import as_rng

__all__ = ["Linear"]


class Linear(Module):
    """Affine map ``y = x @ W + b`` with cached input for backprop.

    Initialization follows the MLPerf-DLRM reference: weights from a
    Xavier-style ``N(0, sqrt(2/(fan_in+fan_out)))`` and biases from
    ``N(0, sqrt(1/fan_out))``.
    """

    def __init__(self, in_features: int, out_features: int, *,
                 rng: int | None | np.random.Generator = None, name: str = "linear"):
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                f"in_features and out_features must be positive, got "
                f"{in_features}, {out_features}"
            )
        rng = as_rng(rng)
        w_std = np.sqrt(2.0 / (in_features + out_features))
        b_std = np.sqrt(1.0 / out_features)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            rng.normal(0.0, w_std, size=(in_features, out_features)), name=f"{name}.weight"
        )
        self.bias = Parameter(rng.normal(0.0, b_std, size=(out_features,)), name=f"{name}.bias")
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=default_dtype())
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input of shape (batch, {self.in_features}), got {x.shape}"
            )
        self._input = x
        return x @ self.weight.data + self.bias.data

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        grad_out = np.asarray(grad_out, dtype=self.weight.data.dtype)
        self.weight.grad += self._input.T @ grad_out
        self.bias.grad += grad_out.sum(axis=0)
        return grad_out @ self.weight.data.T

    __call__ = forward
