"""Optimizers for the manual-backprop substrate.

``SGD`` matches the MLPerf-DLRM reference (plain SGD, no momentum by
default, optional momentum for completeness). ``SparseSGD`` exploits the
``touched_rows`` bookkeeping on sparse parameters so an update step costs
O(rows touched) instead of O(table size) — the same optimization PyTorch's
sparse embedding gradients provide. ``Adagrad`` is included because
industrial DLRM training commonly uses it for embeddings.

Every optimizer exposes ``state_dict()``/``load_state_dict()`` so
checkpoints capture the full update rule: hyperparameters (including a
learning rate adjusted by the divergence guard) plus per-parameter slots
(momentum velocity, Adagrad accumulators), keyed ``<slot>.<param index>``
with indices into the construction-time parameter order. Restoring into a
freshly built optimizer over a structurally identical model reproduces
the interrupted run bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.ops.module import Parameter

__all__ = ["SGD", "SparseSGD", "Adagrad", "RowWiseAdagrad"]


class SGD:
    """Stochastic gradient descent over an explicit parameter list."""

    def __init__(self, params: list[Parameter], lr: float, *, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        if not (0.0 <= momentum < 1.0):
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: dict[int, np.ndarray] = {}

    def step(self) -> None:
        for p in self.params:
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v = self._velocity.get(id(p))
                if v is None:
                    v = np.zeros_like(p.data)
                    self._velocity[id(p)] = v
                v *= self.momentum
                v += grad
                grad = v
            p.data -= self.lr * grad

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def state_dict(self) -> dict:
        state: dict = {"lr": self.lr, "momentum": self.momentum,
                       "weight_decay": self.weight_decay}
        for i, p in enumerate(self.params):
            v = self._velocity.get(id(p))
            if v is not None:
                state[f"velocity.{i}"] = v.copy()
        return state

    def load_state_dict(self, state: dict) -> None:
        self.lr = float(state["lr"])
        self.momentum = float(state["momentum"])
        self.weight_decay = float(state["weight_decay"])
        self._velocity = {}
        for key, value in state.items():
            if key.startswith("velocity."):
                i = int(key.split(".", 1)[1])
                p = self.params[i]
                self._velocity[id(p)] = np.array(value, dtype=p.data.dtype)


class SparseSGD:
    """SGD that only touches rows with recorded non-zero gradients.

    Dense (non-``sparse``) parameters fall back to full updates. Momentum
    is deliberately unsupported: momentum on sparse rows requires decayed
    catch-up bookkeeping that neither DLRM nor TT-Rec use.
    """

    def __init__(self, params: list[Parameter], lr: float):
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        self.params = list(params)
        self.lr = lr

    def step(self) -> None:
        for p in self.params:
            if p.sparse and p.touched_rows is not None:
                rows = p.touched_rows
                p.data[rows] -= self.lr * p.grad[rows]
            else:
                p.data -= self.lr * p.grad

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def state_dict(self) -> dict:
        return {"lr": self.lr}

    def load_state_dict(self, state: dict) -> None:
        self.lr = float(state["lr"])


class RowWiseAdagrad:
    """Row-wise Adagrad — the de-facto industrial DLRM embedding optimizer.

    Keeps *one* accumulator per embedding row (the mean of the row's
    squared gradients) instead of one per element, cutting optimizer state
    for a ``rows x dim`` table from ``rows*dim`` to ``rows`` floats — the
    variant FBGEMM/torchrec call ``ROWWISE_ADAGRAD``. Non-2D or dense
    parameters fall back to element-wise Adagrad behaviour.
    """

    def __init__(self, params: list[Parameter], lr: float, *, eps: float = 1e-10):
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        self.params = list(params)
        self.lr = lr
        self.eps = eps
        self._accum: dict[int, np.ndarray] = {}
        for p in self.params:
            if p.sparse and p.data.ndim >= 2:
                self._accum[id(p)] = np.zeros(p.data.shape[0], dtype=p.data.dtype)
            else:
                self._accum[id(p)] = np.zeros_like(p.data)

    def step(self) -> None:
        for p in self.params:
            acc = self._accum[id(p)]
            rowwise = p.sparse and p.data.ndim >= 2
            if rowwise and p.touched_rows is not None:
                rows = p.touched_rows
                g = p.grad[rows]
                acc[rows] += (g.reshape(g.shape[0], -1) ** 2).mean(axis=1)
                denom = np.sqrt(acc[rows]) + self.eps
                p.data[rows] -= self.lr * g / denom.reshape(-1, *([1] * (g.ndim - 1)))
            elif rowwise:
                g = p.grad
                acc += (g.reshape(g.shape[0], -1) ** 2).mean(axis=1)
                denom = np.sqrt(acc) + self.eps
                p.data -= self.lr * g / denom.reshape(-1, *([1] * (g.ndim - 1)))
            else:
                acc += p.grad * p.grad
                p.data -= self.lr * p.grad / (np.sqrt(acc) + self.eps)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def state_dict(self) -> dict:
        state: dict = {"lr": self.lr, "eps": self.eps}
        for i, p in enumerate(self.params):
            state[f"accum.{i}"] = self._accum[id(p)].copy()
        return state

    def load_state_dict(self, state: dict) -> None:
        self.lr = float(state["lr"])
        self.eps = float(state["eps"])
        for key, value in state.items():
            if key.startswith("accum."):
                i = int(key.split(".", 1)[1])
                p = self.params[i]
                self._accum[id(p)] = np.array(value, dtype=p.data.dtype)


class Adagrad:
    """Adagrad with per-element accumulators; sparse-aware like SparseSGD."""

    def __init__(self, params: list[Parameter], lr: float, *, eps: float = 1e-10):
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        self.params = list(params)
        self.lr = lr
        self.eps = eps
        self._accum: dict[int, np.ndarray] = {
            id(p): np.zeros_like(p.data) for p in self.params
        }

    def step(self) -> None:
        for p in self.params:
            acc = self._accum[id(p)]
            if p.sparse and p.touched_rows is not None:
                rows = p.touched_rows
                g = p.grad[rows]
                acc[rows] += g * g
                p.data[rows] -= self.lr * g / (np.sqrt(acc[rows]) + self.eps)
            else:
                acc += p.grad * p.grad
                p.data -= self.lr * p.grad / (np.sqrt(acc) + self.eps)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def state_dict(self) -> dict:
        state: dict = {"lr": self.lr, "eps": self.eps}
        for i, p in enumerate(self.params):
            state[f"accum.{i}"] = self._accum[id(p)].copy()
        return state

    def load_state_dict(self, state: dict) -> None:
        self.lr = float(state["lr"])
        self.eps = float(state["eps"])
        for key, value in state.items():
            if key.startswith("accum."):
                i = int(key.split(".", 1)[1])
                p = self.params[i]
                self._accum[id(p)] = np.array(value, dtype=p.data.dtype)
