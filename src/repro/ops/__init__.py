"""Minimal manual-backprop neural-network substrate.

This subpackage replaces the role PyTorch plays in the original TT-Rec
codebase. Layers are plain objects with ``forward``/``backward`` methods
that cache whatever the backward pass needs; parameters carry explicit
``.grad`` buffers that optimizers consume. Everything is vectorized NumPy.
"""

from repro.ops.activations import ReLU, Sigmoid
from repro.ops.embedding import EmbeddingBag
from repro.ops.interaction import CatInteraction, DotInteraction
from repro.ops.linear import Linear
from repro.ops.loss import BCEWithLogitsLoss, bce_with_logits
from repro.ops.mlp import MLP
from repro.ops.module import Module, Parameter
from repro.ops.optim import SGD, Adagrad, SparseSGD

__all__ = [
    "Parameter",
    "Module",
    "Linear",
    "ReLU",
    "Sigmoid",
    "MLP",
    "BCEWithLogitsLoss",
    "bce_with_logits",
    "DotInteraction",
    "CatInteraction",
    "EmbeddingBag",
    "SGD",
    "SparseSGD",
    "Adagrad",
]
