"""Binary cross-entropy with logits, the DLRM training loss."""

from __future__ import annotations

import numpy as np

from repro.utils.dtypes import default_dtype

__all__ = ["bce_with_logits", "BCEWithLogitsLoss"]


def _log1p_exp(x: np.ndarray) -> np.ndarray:
    """Numerically stable ``log(1 + exp(x))`` (softplus).

    Piecewise evaluation never exponentiates a positive argument, so no
    overflow occurs for large logits.
    """
    out = np.empty_like(x)
    pos = x > 0
    out[pos] = x[pos] + np.log1p(np.exp(-x[pos]))
    out[~pos] = np.log1p(np.exp(x[~pos]))
    return out


def bce_with_logits(logits: np.ndarray, targets: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean binary cross-entropy of ``sigmoid(logits)`` against ``targets``.

    Returns ``(loss, grad_logits)`` where ``grad_logits`` is the gradient of
    the *mean* loss w.r.t. the logits: ``(sigmoid(z) - y) / batch``.

    Computing loss and gradient together avoids a second sigmoid pass and
    keeps the two numerically consistent (both use the stable softplus
    formulation ``BCE = softplus(z) - y*z``).
    """
    logits = np.asarray(logits, dtype=default_dtype()).reshape(-1)
    targets = np.asarray(targets, dtype=logits.dtype).reshape(-1)
    if logits.shape != targets.shape:
        raise ValueError(f"logits {logits.shape} and targets {targets.shape} must match")
    if logits.size == 0:
        raise ValueError("empty batch")
    loss = float(np.mean(_log1p_exp(logits) - targets * logits))
    # stable sigmoid
    probs = np.empty_like(logits)
    pos = logits >= 0
    probs[pos] = 1.0 / (1.0 + np.exp(-logits[pos]))
    ex = np.exp(logits[~pos])
    probs[~pos] = ex / (1.0 + ex)
    grad = (probs - targets) / logits.size
    return loss, grad


class BCEWithLogitsLoss:
    """Object wrapper around :func:`bce_with_logits` with a cached gradient.

    Usage::

        loss = criterion.forward(logits, y)
        grad_logits = criterion.backward()
    """

    def __init__(self):
        self._grad: np.ndarray | None = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        loss, grad = bce_with_logits(logits, targets)
        self._grad = grad
        return loss

    def backward(self) -> np.ndarray:
        if self._grad is None:
            raise RuntimeError("backward called before forward")
        return self._grad

    __call__ = forward
