"""Elementwise activations with manual backward."""

from __future__ import annotations

import numpy as np

from repro.ops.module import Module
from repro.utils.dtypes import default_dtype

__all__ = ["ReLU", "Sigmoid"]


class ReLU(Module):
    """Rectified linear unit; caches the activation mask."""

    def __init__(self):
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=default_dtype())
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad_out, 0.0)

    __call__ = forward


class Sigmoid(Module):
    """Logistic sigmoid; caches the output for the backward product rule."""

    def __init__(self):
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=default_dtype())
        # Numerically stable piecewise evaluation: never exponentiates a
        # large positive argument.
        out = np.empty_like(x)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        self._out = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._out * (1.0 - self._out)

    __call__ = forward
