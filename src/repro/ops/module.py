"""Parameter and Module base classes for the manual-backprop substrate."""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.utils.dtypes import default_dtype

__all__ = ["Parameter", "Module"]


class Parameter:
    """A trainable array with an explicit dense gradient buffer.

    Attributes
    ----------
    data : np.ndarray
        The parameter value, updated in place by optimizers.
    grad : np.ndarray
        Accumulated gradient of the loss w.r.t. ``data``. Layers *add* into
        this buffer during backward so a parameter shared by several paths
        (e.g. a TT core indexed by many rows) accumulates correctly.
    name : str
        Human-readable identifier used in optimizer state and error messages.
    sparse : bool
        Parameters flagged sparse (embedding tables) additionally record
        per-step touched row indices in ``touched_rows`` so sparse
        optimizers can skip the untouched bulk of the table.
    """

    def __init__(self, data: np.ndarray, *, name: str = "param", sparse: bool = False,
                 dtype: np.dtype | None = None):
        self.data = np.ascontiguousarray(
            data, dtype=default_dtype() if dtype is None else np.dtype(dtype)
        )
        self.grad = np.zeros_like(self.data)
        self.name = name
        self.sparse = sparse
        self.touched_rows: np.ndarray | None = None

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        """Reset the gradient buffer (and touched-row bookkeeping) to zero."""
        self.grad.fill(0.0)
        self.touched_rows = None

    def record_touched(self, rows: np.ndarray) -> None:
        """Record rows whose gradient is (possibly) non-zero this step."""
        rows = np.unique(np.asarray(rows, dtype=np.int64))
        if self.touched_rows is None:
            self.touched_rows = rows
        else:
            self.touched_rows = np.union1d(self.touched_rows, rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.data.shape}, sparse={self.sparse})"


class Module:
    """Base class providing parameter discovery and grad reset.

    Subclasses assign :class:`Parameter` instances and sub-``Module``s as
    attributes; :meth:`parameters` walks the attribute graph (depth-first,
    deterministic order) to collect every trainable parameter exactly once.
    """

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        seen: set[int] = set()
        self._collect(params, seen)
        return params

    def _collect(self, params: list[Parameter], seen: set[int]) -> None:
        for value in vars(self).values():
            if isinstance(value, Parameter):
                if id(value) not in seen:
                    seen.add(id(value))
                    params.append(value)
            elif isinstance(value, Module):
                value._collect(params, seen)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Parameter):
                        if id(item) not in seen:
                            seen.add(id(item))
                            params.append(item)
                    elif isinstance(item, Module):
                        item._collect(params, seen)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar parameters in this module tree."""
        return sum(p.size for p in self.parameters())

    def bytes(self, dtype_bytes: int = 4) -> int:
        """Model size in bytes assuming ``dtype_bytes`` per element.

        The paper reports sizes for fp32 tables, hence the default of 4
        even though this NumPy implementation trains in float64 under the
        default :func:`repro.utils.dtypes.default_dtype` policy.
        """
        return self.num_parameters() * dtype_bytes
