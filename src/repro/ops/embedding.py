"""Dense EmbeddingBag — the uncompressed DLRM baseline.

Mirrors ``torch.nn.EmbeddingBag``: a table of ``num_rows x dim`` weights,
queried with CSR-style ``(indices, offsets)`` bags, pooled by sum or mean,
with optional per-sample weights (the alpha_i of paper Eq. 6).
"""

from __future__ import annotations

import numpy as np

from repro.ops.module import Module, Parameter
from repro.utils.seeding import as_rng
from repro.utils.validation import check_1d_int_array, check_csr

__all__ = ["EmbeddingBag", "segment_sum"]


def segment_sum(rows: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Sum contiguous row segments delimited by ``offsets``.

    ``rows`` has shape ``(n, d)``; ``offsets`` has shape ``(m+1,)`` with
    ``offsets[0] == 0`` and ``offsets[-1] == n``. Returns ``(m, d)``.
    Empty segments produce zero rows. Implemented via an exclusive prefix
    sum so the whole reduction is a single vectorized subtraction.
    """
    n, d = rows.shape
    cs = np.empty((n + 1, d), dtype=rows.dtype)
    cs[0] = 0.0
    np.cumsum(rows, axis=0, out=cs[1:])
    return cs[offsets[1:]] - cs[offsets[:-1]]


class EmbeddingBag(Module):
    """Uncompressed embedding table with bag pooling.

    Parameters
    ----------
    num_rows, dim:
        Table shape.
    mode:
        ``"sum"`` or ``"mean"`` pooling across each bag.
    initializer:
        Callable ``(rng, shape) -> np.ndarray`` or ``None`` for the DLRM
        default ``Uniform(-1/sqrt(num_rows), 1/sqrt(num_rows))``.

    Note: DLRM initializes embedding tables with ``Uniform(±1/sqrt(M))``
    where ``M`` is the *row count*; Table 1 of the paper sweeps Gaussian
    alternatives parameterized by the same ``n``.
    """

    def __init__(self, num_rows: int, dim: int, *, mode: str = "sum",
                 initializer=None, rng: int | None | np.random.Generator = None,
                 name: str = "emb"):
        if num_rows <= 0 or dim <= 0:
            raise ValueError(f"num_rows and dim must be positive, got {num_rows}, {dim}")
        if mode not in ("sum", "mean"):
            raise ValueError(f"mode must be 'sum' or 'mean', got {mode!r}")
        rng = as_rng(rng)
        self.num_rows = num_rows
        self.dim = dim
        self.mode = mode
        if initializer is None:
            bound = 1.0 / np.sqrt(num_rows)
            data = rng.uniform(-bound, bound, size=(num_rows, dim))
        else:
            data = initializer(rng, (num_rows, dim))
        self.weight = Parameter(data, name=f"{name}.weight", sparse=True)
        self._cache: tuple | None = None
        self._did_backward = False

    def forward(self, indices: np.ndarray, offsets: np.ndarray,
                per_sample_weights: np.ndarray | None = None) -> np.ndarray:
        indices, offsets = check_csr(indices, offsets, self.num_rows)
        rows = self.weight.data[indices]
        if per_sample_weights is not None:
            alpha = np.asarray(per_sample_weights, dtype=rows.dtype).reshape(-1)
            if alpha.shape[0] != indices.shape[0]:
                raise ValueError(
                    f"per_sample_weights length {alpha.shape[0]} != "
                    f"len(indices) {indices.shape[0]}"
                )
            rows = rows * alpha[:, None]
        else:
            alpha = None
        out = segment_sum(rows, offsets)
        counts = np.diff(offsets)
        if self.mode == "mean":
            scale = np.asarray(np.where(counts > 0, counts, 1), dtype=out.dtype)
            out = out / scale[:, None]
        self._cache = (indices, offsets, alpha, counts)
        self._did_backward = False
        return out

    def backward(self, grad_out: np.ndarray) -> None:
        """Accumulate grads into ``weight.grad``; bags carry no input grad.

        Consumes the forward cache: a second ``backward`` for the same
        forward would silently double-accumulate gradients, so it raises
        instead (the contract every zoo member shares — see
        ``repro.compress.base.CompressedEmbedding``).
        """
        if self._cache is None:
            if self._did_backward:
                raise RuntimeError(
                    "backward called twice for one forward; table gradients "
                    "would double-accumulate — run forward again first"
                )
            raise RuntimeError("backward called before forward")
        indices, offsets, alpha, counts = self._cache
        grad_out = np.asarray(grad_out, dtype=self.weight.data.dtype)
        if self.mode == "mean":
            scale = np.asarray(np.where(counts > 0, counts, 1),
                               dtype=grad_out.dtype)
            grad_out = grad_out / scale[:, None]
        # Expand bag gradients back to per-index gradients.
        bag_ids = np.repeat(np.arange(len(counts)), counts)
        grad_rows = grad_out[bag_ids]
        if alpha is not None:
            grad_rows = grad_rows * alpha[:, None]
        np.add.at(self.weight.grad, indices, grad_rows)
        self.weight.record_touched(indices)
        self._cache = None
        self._did_backward = True

    __call__ = forward

    def lookup(self, indices: np.ndarray) -> np.ndarray:
        """Plain (non-pooled) row gather; used by caches and tests.

        Indices are validated against ``num_rows`` — a negative or
        out-of-range index raises :class:`IndexOutOfRangeError` instead of
        silently wrapping around through NumPy fancy indexing. Callers that
        want clamp-or-hash semantics for out-of-vocabulary ids must go
        through :class:`repro.serving.RequestSanitizer`; the table itself
        never guesses.
        """
        indices = check_1d_int_array(
            "indices", np.asarray(indices).reshape(-1),
            min_value=0, max_value=self.num_rows - 1,
        )
        return self.weight.data[indices]
