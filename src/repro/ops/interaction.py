"""DLRM feature-interaction operators.

DLRM combines the bottom-MLP output with the pooled embedding vectors via
an explicit second-order interaction: all pairwise dot products between the
feature vectors, concatenated with the dense vector (``DotInteraction``,
the MLPerf-DLRM default, ``arch-interaction-op=dot``). ``CatInteraction``
(plain concatenation) is provided as the simpler alternative DLRM also
supports.
"""

from __future__ import annotations

import numpy as np

from repro.ops.module import Module
from repro.utils.dtypes import default_dtype

__all__ = ["DotInteraction", "CatInteraction"]


class DotInteraction(Module):
    """Pairwise-dot interaction, ``arch-interaction-op=dot`` in DLRM.

    Input: the dense vector ``x`` of shape ``(B, D)`` and ``S`` sparse
    feature vectors each ``(B, D)``. Stacking them gives ``T`` of shape
    ``(B, F, D)`` with ``F = S + 1``; the layer emits
    ``concat([x, lower_triangle(T @ T^T)])`` of width
    ``D + F*(F-1)//2`` (strictly-lower triangle, no self-interactions,
    matching ``arch-interaction-itself=False``).
    """

    def __init__(self):
        self._stacked: np.ndarray | None = None
        self._tri: tuple[np.ndarray, np.ndarray] | None = None

    @staticmethod
    def output_dim(dense_dim: int, num_sparse: int) -> int:
        f = num_sparse + 1
        return dense_dim + f * (f - 1) // 2

    def forward(self, x: np.ndarray, sparse: list[np.ndarray]) -> np.ndarray:
        x = np.asarray(x, dtype=default_dtype())
        if x.ndim != 2:
            raise ValueError(f"dense input must be 2-D, got shape {x.shape}")
        feats = [x] + [np.asarray(v, dtype=x.dtype) for v in sparse]
        for i, v in enumerate(feats):
            if v.shape != x.shape:
                raise ValueError(
                    f"feature {i} has shape {v.shape}, expected {x.shape}"
                )
        stacked = np.stack(feats, axis=1)  # (B, F, D)
        self._stacked = stacked
        z = stacked @ stacked.transpose(0, 2, 1)  # (B, F, F)
        f = stacked.shape[1]
        li, lj = np.tril_indices(f, k=-1)
        self._tri = (li, lj)
        return np.concatenate([x, z[:, li, lj]], axis=1)

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        """Return ``(grad_x, [grad_sparse_0, ...])``."""
        if self._stacked is None or self._tri is None:
            raise RuntimeError("backward called before forward")
        stacked = self._stacked
        b, f, d = stacked.shape
        li, lj = self._tri
        grad_out = np.asarray(grad_out, dtype=stacked.dtype)
        grad_x_direct = grad_out[:, :d]
        grad_pairs = grad_out[:, d:]
        gz = np.zeros((b, f, f), dtype=stacked.dtype)
        gz[:, li, lj] = grad_pairs
        # z = T T^T  =>  dT = (gz + gz^T) T
        grad_stacked = (gz + gz.transpose(0, 2, 1)) @ stacked
        grad_x = grad_stacked[:, 0, :] + grad_x_direct
        grad_sparse = [grad_stacked[:, i, :] for i in range(1, f)]
        return grad_x, grad_sparse

    __call__ = forward


class CatInteraction(Module):
    """Concatenation interaction, ``arch-interaction-op=cat`` in DLRM."""

    def __init__(self):
        self._splits: list[int] | None = None

    @staticmethod
    def output_dim(dense_dim: int, num_sparse: int) -> int:
        return dense_dim * (num_sparse + 1)

    def forward(self, x: np.ndarray, sparse: list[np.ndarray]) -> np.ndarray:
        feats = [np.asarray(x, dtype=default_dtype())] + [
            np.asarray(v, dtype=default_dtype()) for v in sparse
        ]
        self._splits = [v.shape[1] for v in feats]
        return np.concatenate(feats, axis=1)

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        if self._splits is None:
            raise RuntimeError("backward called before forward")
        pieces = np.split(
            np.asarray(grad_out, dtype=default_dtype()),
            np.cumsum(self._splits)[:-1],
            axis=1,
        )
        return pieces[0], list(pieces[1:])

    __call__ = forward
