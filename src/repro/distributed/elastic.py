"""Elastic fault-tolerant data-parallel training: shard loss and recovery.

TT-Rec's compression makes full replication the natural training layout
(every worker holds the whole compressed model), but the *run* still has
to survive a worker disappearing mid-training. This module adds the
supervisor the serving tier already has (PR 6) to the training side:

- :class:`TrainerWorker` — one data-parallel worker as a deterministic
  state machine (``up | hung | down | rewarming``) on the shared
  :class:`~repro.serving.queue.ManualClock`, mirroring
  :class:`~repro.sharding.worker.ShardWorker`. Faults arrive through the
  seeded injector sites ``dist.{crash,hang,slow,net_drop}`` or a
  scheduled ``--kill-worker`` spec.
- :class:`ElasticTrainer` — the supervisor. Every step it dispatches the
  global batch across the *live* membership (re-sharding over survivors
  when a worker is lost, so no batch is ever dropped), reduces gradients
  through the degraded :class:`~repro.distributed.collectives.Communicator`,
  detects silent deaths with a PR-6 :class:`~repro.sharding.health.HealthPlane`
  heartbeat (prefix ``dist.worker``), applies per-dispatch
  timeout/retry/backoff with breaker-gated eviction, and drives the
  recovery ladder for lost workers.

The recovery ladder (all in simulated time)::

    marked down ──restart_after_ms──▶ restart (replica memory poisoned,
        │                             fresh optimizer)
        └──▶ rewarming ──rewarm_ms──▶ restore every shard-delta
             checkpoint at the last common step ──▶ replay hot rows
             (rows touched since that step, from a survivor) ──▶
             checksum audit vs the survivor ──▶ readmit + resync barrier

Exactness: each worker scales its local BCE gradient by
``shard_size / batch_size`` before backward, so the ``allreduce_sum`` of
partial gradients equals the *global-batch mean* gradient for any
partition of the batch — degraded steps over survivors compute the same
update a full fleet would (modulo float summation order), which is why a
chaos run's final loss tracks the no-fault run.

Ledger reconciliation (:func:`reconcile_elastic`) balances every
``dist.*`` injector firing against its defensive counter and proves no
lost batches: every batch fed is applied exactly once, every sample
accounted. The whole drill is deterministic — ManualClock plus one seeded
injector stream — so same-seed runs produce byte-identical ledgers and
flight dumps. Beyond the reconciled counters the drill exports
``dist.step.applied`` (optimizer steps actually applied),
``dist.kills_scheduled{worker=}`` (operator-scheduled kills, as opposed
to injector crashes) and the ``dist.recover.time_ms`` histogram
(down → readmitted, simulated milliseconds).
"""

from __future__ import annotations

import re
import zlib
from dataclasses import dataclass

import numpy as np

from repro.data.batching import Batch
from repro.distributed.collectives import Communicator
from repro.distributed.data_parallel import shard_batch_counts
from repro.distributed.model_parallel import partition_parameters
from repro.models.serialization import load_state_dict, state_dict
from repro.ops.loss import bce_with_logits
from repro.ops.optim import RowWiseAdagrad, SparseSGD
from repro.serving.breaker import CircuitBreaker
from repro.serving.queue import ManualClock
from repro.sharding.health import HealthPlane
from repro.telemetry import get_registry, traced_event, traced_span

__all__ = ["ElasticTrainer", "TrainerWorker", "ElasticConfig", "ElasticError",
           "WorkerDown", "WorkerTimeout", "WorkerNetDrop",
           "WorkerKillSpec", "parse_worker_kill_spec", "reconcile_elastic"]


class ElasticError(RuntimeError):
    """The elastic run cannot make progress (no live workers, lost batch)."""


class WorkerDown(RuntimeError):
    """Dispatch refused: the worker is dead (or not yet readmitted)."""


class WorkerTimeout(RuntimeError):
    """A gradient dispatch produced no reply within its deadline."""


class WorkerNetDrop(RuntimeError):
    """The supervisor<->worker message was lost in transit."""


_KILL_RE = re.compile(r"^(\d+)@(\d+)$")


class WorkerKillSpec:
    """One scheduled worker kill: ``<worker>@<step>`` (training steps)."""

    __slots__ = ("worker", "at_step", "done")

    def __init__(self, worker: int, at_step: int):
        if worker < 0:
            raise ValueError(f"worker must be >= 0, got {worker}")
        if at_step < 1:
            raise ValueError(f"kill step must be >= 1, got {at_step}")
        self.worker = worker
        self.at_step = at_step
        self.done = False

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"WorkerKillSpec(worker={self.worker}, at_step={self.at_step})"


def parse_worker_kill_spec(spec: str) -> WorkerKillSpec:
    """Parse ``"1@60"`` (kill worker 1 when batch 60 is fed)."""
    m = _KILL_RE.match(spec.strip())
    if m is None:
        raise ValueError(
            f"bad --kill-worker spec {spec!r}: expected <worker>@<step>"
        )
    return WorkerKillSpec(int(m.group(1)), int(m.group(2)))


@dataclass(frozen=True)
class ElasticConfig:
    """Timing, retry, and recovery knobs of the elastic runtime.

    All times are simulated milliseconds on the run's ManualClock.
    """

    step_ms: float = 10.0             # healthy per-worker compute per step
    slow_penalty_ms: float = 30.0     # added to the next dispatch on dist.slow
    hang_ms: float = 120.0            # how long a dist.hang stays wedged
    heartbeat_interval_ms: float = 50.0
    miss_threshold: int = 3
    restart_after_ms: float = 100.0   # marked-down -> supervised restart
    rewarm_ms: float = 50.0           # restart -> recovery eligible
    deadline_ms: float = 50.0         # per-dispatch reply deadline
    dispatch_retries: int = 2         # re-dispatches before a breaker strike
    backoff: float = 2.0              # deadline multiplier per retry
    step_attempts: int = 8            # re-shard attempts before a batch is lost
    straggler_factor: float = 4.0     # ewma spread that triggers re-weighting
    ewma_alpha: float = 0.3
    breaker_threshold: int = 3
    breaker_window: int = 20

    def __post_init__(self):
        if self.step_ms <= 0:
            raise ValueError(f"step_ms must be > 0, got {self.step_ms}")
        if self.deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be > 0, got {self.deadline_ms}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if self.step_attempts < 1:
            raise ValueError(
                f"step_attempts must be >= 1, got {self.step_attempts}"
            )
        if self.straggler_factor < 1.0:
            raise ValueError(
                f"straggler_factor must be >= 1, got {self.straggler_factor}"
            )
        if not (0.0 < self.ewma_alpha <= 1.0):
            raise ValueError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )


class TrainerWorker:
    """One data-parallel training worker as a failure-model state machine.

    The process boundary is modelled, not spawned (the
    :class:`~repro.sharding.worker.ShardWorker` convention): the
    supervisor talks to the worker only through ``heartbeat`` and
    ``compute_grads`` messages on the shared deterministic clock, so
    every failure mode replays exactly under a seeded injector.

    ========= ==========================================================
    state     behaviour
    ========= ==========================================================
    up        dispatches and heartbeats answered
    hung      no replies until ``hang_ms`` of simulated time passes
    down      dead until supervised ``restart()``; dispatches refuse
    rewarming restarted but not readmitted: heartbeats answer (reporting
              the state), dispatches refuse while recovery runs
    ========= ==========================================================

    ``dist.slow`` is transient: the next dispatch carries a simulated
    latency penalty, and a dispatch whose penalty exceeds the deadline is
    treated exactly like a timeout.
    """

    def __init__(self, worker_id: int, replica, *, make_optimizer,
                 config: ElasticConfig, injector=None):
        self.worker_id = worker_id
        self.replica = replica
        self.config = config
        self.injector = injector
        self._make_optimizer = make_optimizer
        self.optimizer = make_optimizer(replica)
        self.state = "up"
        self.hang_until = -1.0
        self.rewarm_until = -1.0
        self.impaired_since = None  # when the current outage began (sim ms)
        self._pending_penalty_ms = 0.0
        self.ewma_ms: float | None = None
        wid = str(worker_id)
        reg = get_registry()
        self._heartbeats = reg.counter("dist.heartbeats", worker=wid)
        self._dispatches = reg.counter("dist.dispatches", worker=wid)
        self._crashes = reg.counter("dist.crashes", worker=wid)
        self._hangs = reg.counter("dist.hangs", worker=wid)
        self._slows = reg.counter("dist.slows", worker=wid)
        self._net_drops = reg.counter("dist.net_drops", worker=wid)

    # ------------------------------------------------------------------ #
    # Failure model
    # ------------------------------------------------------------------ #

    def probe_faults(self, now: float) -> None:
        """One fault-probe round (control-plane tick): crash and hang."""
        if self.injector is None or self.state in ("down", "rewarming"):
            return
        if self.injector.fires("dist.crash"):
            self.kill(now, cause="fault")
            return
        if self.injector.fires("dist.hang"):
            self._hangs.inc()
            self.hang_until = now + self.config.hang_ms
            self.state = "hung"
            if self.impaired_since is None:
                self.impaired_since = now
            traced_event("dist.hang", worker=self.worker_id,
                         until_ms=self.hang_until)

    def kill(self, now: float, *, cause: str = "scheduled") -> None:
        """Crash the worker (fault-injected or ``--kill-worker`` scheduled)."""
        if self.state == "down":
            return
        if cause == "fault":
            self._crashes.inc()
        else:
            get_registry().counter("dist.kills_scheduled",
                                   worker=str(self.worker_id)).inc()
        self.state = "down"
        if self.impaired_since is None:
            self.impaired_since = now
        traced_event("dist.crash", worker=self.worker_id, cause=cause,
                     at_ms=now)

    def restart(self, now: float) -> None:
        """Supervised restart: a fresh process enters the re-warm phase.

        The old process's memory is gone, so the replica is poisoned
        (NaN-filled) and the optimizer rebuilt with empty slots — nothing
        short of a full shard restore + hot-row replay can pass the
        recovery audit afterwards.
        """
        if self.state != "down":
            return
        for p in self.replica.parameters():
            p.data.fill(np.nan)
            p.zero_grad()
        self.optimizer = self._make_optimizer(self.replica)
        self.state = "rewarming"
        self.rewarm_until = now + self.config.rewarm_ms
        traced_event("dist.worker.restart", worker=self.worker_id, at_ms=now,
                     ready_ms=self.rewarm_until)

    def begin_rewarm(self, now: float) -> None:
        """Force the re-warm phase from whatever state the worker is in.

        Mirrors the serving supervisor: a crashed worker restarts, a
        worker still hung past the restart deadline is watchdog-killed
        first, and a self-healed worker keeps its process (parameters
        intact) but still rejoins only through re-warm -> audit ->
        readmission.
        """
        self._tick_state(now)
        if self.state == "rewarming":
            return
        if self.state == "hung":
            self.kill(now, cause="watchdog")
        if self.state == "down":
            self.restart(now)
            return
        self.state = "rewarming"
        self.rewarm_until = now + self.config.rewarm_ms
        traced_event("dist.worker.rewarm_forced", worker=self.worker_id,
                     at_ms=now, ready_ms=self.rewarm_until)

    def readmit(self, now: float) -> None:
        """Recovery complete: the worker takes training traffic again."""
        self.state = "up"
        self.rewarm_until = -1.0
        self.impaired_since = None
        self.ewma_ms = None
        traced_event("dist.worker.rewarmed", worker=self.worker_id, at_ms=now)

    def _tick_state(self, now: float) -> None:
        if self.state == "hung" and now >= self.hang_until:
            self.state = "up"
            self.hang_until = -1.0
            self.impaired_since = None

    # ------------------------------------------------------------------ #
    # Messages
    # ------------------------------------------------------------------ #

    def heartbeat(self, now: float) -> dict | None:
        """Answer a health-plane probe; ``None`` models a lost reply."""
        self._tick_state(now)
        if self.state == "down":
            return None
        if self.state == "hung":
            return None
        if self.injector is not None and self.injector.fires("dist.net_drop"):
            self._net_drops.inc()
            return None
        self._heartbeats.inc()
        return {"worker": self.worker_id, "state": self.state, "at_ms": now}

    def compute_grads(self, shard: Batch, scale: float, now: float,
                      deadline_ms: float) -> tuple[float, float]:
        """One local forward/backward over a batch shard.

        The local BCE gradient is scaled by ``scale`` (= shard size /
        global batch size) so the fleet-wide ``allreduce_sum`` of these
        partial gradients is exactly the global-batch mean gradient.
        Gradients (and sparse touched rows) are left on the replica's
        parameters. Returns ``(shard mean loss, simulated service ms)``.
        Raises :class:`WorkerDown`, :class:`WorkerTimeout` or
        :class:`WorkerNetDrop` per the failure model.
        """
        self._tick_state(now)
        if self.state in ("down", "rewarming"):
            raise WorkerDown(f"worker {self.worker_id} is {self.state}")
        if self.state == "hung":
            raise WorkerTimeout(
                f"worker {self.worker_id} hung until {self.hang_until:.0f} ms"
            )
        if self.injector is not None and self.injector.fires("dist.net_drop"):
            self._net_drops.inc()
            raise WorkerNetDrop(f"message to worker {self.worker_id} lost")
        sim_ms = self.config.step_ms
        if self.injector is not None and self.injector.fires("dist.slow"):
            self._slows.inc()
            self._pending_penalty_ms = self.config.slow_penalty_ms
            traced_event("dist.slow", worker=self.worker_id,
                         penalty_ms=self.config.slow_penalty_ms)
        if self._pending_penalty_ms:
            sim_ms += self._pending_penalty_ms
            self._pending_penalty_ms = 0.0
        if sim_ms > deadline_ms:
            raise WorkerTimeout(
                f"worker {self.worker_id} needed {sim_ms:.1f} ms > "
                f"deadline {deadline_ms:.1f} ms"
            )
        self.optimizer.zero_grad()
        logits = self.replica.forward(shard.dense, shard.sparse,
                                      shard.per_sample_weights)
        loss, grad = bce_with_logits(logits, shard.labels)
        self.replica.backward(grad * scale)
        self._dispatches.inc()
        return loss, sim_ms

    # ------------------------------------------------------------------ #

    def stats(self) -> dict:
        return {
            "worker": self.worker_id,
            "state": self.state,
            "heartbeats": self._heartbeats.value,
            "dispatches": self._dispatches.value,
            "crashes": self._crashes.value,
            "hangs": self._hangs.value,
            "slows": self._slows.value,
            "net_drops": self._net_drops.value,
            "ewma_ms": self.ewma_ms,
        }


def _state_checksum(replica, optimizer) -> int:
    """CRC32 over every parameter and optimizer slot (bit-level audit)."""
    crc = 0
    for p in replica.parameters():
        crc = zlib.crc32(p.data.tobytes(), crc)
    opt_state = optimizer.state_dict()
    for key in sorted(opt_state):
        value = opt_state[key]
        if isinstance(value, np.ndarray):
            crc = zlib.crc32(value.tobytes(), crc)
        else:
            crc = zlib.crc32(repr(value).encode(), crc)
    return crc


class ElasticTrainer:
    """Supervisor for K elastic data-parallel workers.

    Parameters
    ----------
    replicas:
        K structurally identical models (parameters are broadcast from
        replica 0 at construction, as in
        :class:`~repro.distributed.data_parallel.DataParallelTrainer`).
    lr / optimizer:
        Per-worker optimizer: ``"sgd"`` (SparseSGD) or ``"adagrad"``
        (RowWiseAdagrad — gives the shard-delta checkpoints real
        per-row optimizer state to restore and replay).
    injector:
        Shared :class:`~repro.reliability.fault_injection.FaultInjector`
        driving both the ``dist.*`` worker sites and the
        ``collective.*`` sites of the gradient allreduce.
    checkpoint / checkpoint_every:
        A :class:`~repro.reliability.checkpoint.CheckpointManager` for
        shard-delta checkpoints every N applied steps. Each live worker
        saves its owned parameter slice; a survivor *adopts* the slice
        of any worker that is down so every round stays complete. Without
        a manager, recovery falls back to a full state copy from a
        survivor (correct, but moves the whole model instead of a delta).
    kill_specs:
        Scheduled :class:`WorkerKillSpec` kills (``--kill-worker``).

    One elastic run per process at a time: construction resets the
    ``dist.*`` registry namespace so ledger reconciliation is run-local.
    """

    def __init__(self, replicas: list, *, lr: float = 0.1,
                 optimizer: str = "sgd", injector=None,
                 clock: ManualClock | None = None,
                 config: ElasticConfig | None = None,
                 checkpoint=None, checkpoint_every: int = 0,
                 kill_specs: list[WorkerKillSpec] | None = None):
        if len(replicas) < 2:
            raise ValueError("elastic training needs at least 2 workers")
        if optimizer not in ("sgd", "adagrad"):
            raise ValueError(f"optimizer must be sgd|adagrad, got {optimizer!r}")
        if checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        reg = get_registry()
        reg.reset(prefix="dist.")
        self.config = config or ElasticConfig()
        self.injector = injector
        self.clock = clock or ManualClock()
        self.checkpoint = checkpoint
        self.checkpoint_every = checkpoint_every if checkpoint is not None else 0
        self.kill_specs = list(kill_specs or [])
        world = len(replicas)
        for ks in self.kill_specs:
            if ks.worker >= world:
                raise ValueError(
                    f"--kill-worker targets worker {ks.worker} but the run "
                    f"has {world} workers"
                )
        reference = state_dict(replicas[0])
        for replica in replicas[1:]:
            load_state_dict(replica, reference)
        if optimizer == "sgd":
            def make_optimizer(replica):
                return SparseSGD(replica.parameters(), lr=lr)
        else:
            def make_optimizer(replica):
                return RowWiseAdagrad(replica.parameters(), lr=lr)
        self.workers = [
            TrainerWorker(w, replica, make_optimizer=make_optimizer,
                          config=self.config, injector=injector)
            for w, replica in enumerate(replicas)
        ]
        self.comm = Communicator(world, injector=injector)
        self.health = HealthPlane(
            world, heartbeat_interval_ms=self.config.heartbeat_interval_ms,
            miss_threshold=self.config.miss_threshold, prefix="dist.worker")
        self.breakers = [
            CircuitBreaker(f"dist.worker{w}",
                           failure_threshold=self.config.breaker_threshold,
                           window=self.config.breaker_window)
            for w in range(world)
        ]
        # Checkpoint-shard ownership: parameter index -> owner worker.
        self.owner = partition_parameters(replicas[0], world)
        self.owned = {w: [i for i, o in enumerate(self.owner) if o == w]
                      for w in range(world)}
        self._restart_at: list[float | None] = [None] * world
        # Rows to replay per parameter since the last checkpoint round:
        # ndarray of touched rows for sparse parameters, None = the whole
        # parameter must be copied (dense, or a sparse full update).
        self._replay_rows: dict[int, np.ndarray | None] = {}
        self._reset_replay_tracking()
        self._step_index = 0       # batches fed (kill specs key on this)
        self._applied = 0          # batches applied
        self.losses: list[float] = []
        self.ledger = {
            "batches_fed": 0, "steps_applied": 0, "step_attempts": 0,
            "samples_fed": 0, "samples_applied": 0, "records": [],
        }
        self.recovery_times: list[float] = []
        self._c_applied = reg.counter("dist.step.applied")
        self._c_retried = reg.counter("dist.step.retried")
        self._c_degraded = reg.counter("dist.step.degraded")
        self._c_dispatch_retries = reg.counter("dist.dispatch.retries")
        self._c_epochs = reg.counter("dist.epochs")
        self._c_resyncs = reg.counter("dist.resyncs")
        self._c_straggler = reg.counter("dist.straggler.rebalances")
        self._c_ckpt_rounds = reg.counter("dist.ckpt.rounds")
        self._c_ckpt_adopted = reg.counter("dist.ckpt.adopted")
        self._c_restores = reg.counter("dist.recover.restores")
        self._c_replayed_rows = reg.counter("dist.recover.replayed_rows")
        self._c_replayed_params = reg.counter("dist.recover.replayed_params")
        self._c_audits = reg.counter("dist.recover.audits")
        self._c_audit_failures = reg.counter("dist.recover.audit_failures")
        self._c_readmissions = reg.counter("dist.recover.readmissions")
        self._h_recover = reg.histogram(
            "dist.recover.time_ms",
            bounds=(50.0, 100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0),
        )

    # ------------------------------------------------------------------ #
    # Topology helpers
    # ------------------------------------------------------------------ #

    @property
    def world_size(self) -> int:
        return len(self.workers)

    def live_workers(self) -> list[int]:
        return [w for w in range(self.world_size) if self.health.is_up(w)]

    def parameters_in_sync(self, atol: float = 0.0) -> bool:
        """True when every *live* replica holds identical parameters."""
        live = self.live_workers()
        if len(live) < 2:
            return True
        ref = self.workers[live[0]].replica.parameters()
        for w in live[1:]:
            for a, b in zip(ref, self.workers[w].replica.parameters()):
                if atol == 0.0:
                    if not np.array_equal(a.data, b.data):
                        return False
                elif not np.allclose(a.data, b.data, atol=atol, rtol=0.0):
                    return False
        return True

    def _reset_replay_tracking(self) -> None:
        self._replay_rows = {
            i: (np.empty(0, dtype=np.int64) if p.sparse else None)
            for i, p in enumerate(self.workers[0].replica.parameters())
        }

    # ------------------------------------------------------------------ #
    # Control plane
    # ------------------------------------------------------------------ #

    def _control_plane(self, *, probe_faults: bool = True) -> None:
        now = self.clock.now()
        if probe_faults:
            for worker in self.workers:
                worker.probe_faults(now)
        self.health.tick(now, self.workers)
        cfg = self.config
        for w, worker in enumerate(self.workers):
            verdict = self.health.verdict[w]
            if verdict == "down":
                if self._restart_at[w] is None:
                    self._restart_at[w] = \
                        (self.health.marked_down_at[w] or now) \
                        + cfg.restart_after_ms
                if now >= self._restart_at[w]:
                    worker.begin_rewarm(now)
                    if worker.state == "rewarming":
                        self.health.mark_rewarming(w)
                        self._restart_at[w] = None
            elif verdict == "rewarming" and worker.state == "rewarming" \
                    and now >= worker.rewarm_until:
                self._recover(w)

    def _fire_kills(self) -> None:
        now = self.clock.now()
        for ks in self.kill_specs:
            if not ks.done and self._step_index >= ks.at_step:
                self.workers[ks.worker].kill(now, cause="scheduled")
                ks.done = True

    # ------------------------------------------------------------------ #
    # Recovery ladder
    # ------------------------------------------------------------------ #

    def _full_sync_from(self, donor: int, target: int) -> None:
        """Bitwise copy of a donor's replica + optimizer state."""
        src = self.workers[donor]
        dst = self.workers[target]
        load_state_dict(dst.replica, state_dict(src.replica))
        dst.optimizer.load_state_dict(src.optimizer.state_dict())

    def _replay_hot_state(self, donor: int, target: int) -> tuple[int, int]:
        """Copy post-checkpoint deltas from a survivor onto the target.

        Sparse parameters move only the rows touched since the last
        checkpoint round (their other rows are bit-identical to the
        restored checkpoint by the sparse-update invariant); dense
        parameters and non-row optimizer slots move whole. Returns
        ``(rows replayed, whole arrays replayed)``.
        """
        src_params = self.workers[donor].replica.parameters()
        dst_params = self.workers[target].replica.parameters()
        rows_replayed = 0
        arrays_replayed = 0
        for i, (sp, dp) in enumerate(zip(src_params, dst_params)):
            rows = self._replay_rows.get(i)
            if sp.sparse and rows is not None:
                if rows.size:
                    dp.data[rows] = sp.data[rows]
                    rows_replayed += int(rows.size)
            else:
                dp.data[...] = sp.data
                arrays_replayed += 1
        src_state = self.workers[donor].optimizer.state_dict()
        dst_state = self.workers[target].optimizer.state_dict()
        for key, value in src_state.items():
            if not isinstance(value, np.ndarray):
                dst_state[key] = value
                continue
            slot, _, idx = key.rpartition(".")
            i = int(idx) if slot and idx.isdigit() else None
            rows = self._replay_rows.get(i) if i is not None else None
            p = src_params[i] if i is not None else None
            if (p is not None and p.sparse and rows is not None
                    and value.ndim >= 1
                    and value.shape[0] == p.data.shape[0]):
                if rows.size:
                    dst_state[key][rows] = value[rows]
                    rows_replayed += int(rows.size)
            else:
                dst_state[key] = value
                arrays_replayed += 1
        self.workers[target].optimizer.load_state_dict(dst_state)
        return rows_replayed, arrays_replayed

    def _recover(self, w: int) -> None:
        """Restore + replay + audit + readmit one rewarmed worker."""
        live = self.live_workers()
        if not live:
            # No donor to replay/audit against; try again next round.
            self.workers[w].rewarm_until = \
                self.clock.now() + self.config.rewarm_ms
            return
        donor = live[0]
        worker = self.workers[w]
        with traced_span("dist.recover", worker=str(w)):
            restored_step = None
            if self.checkpoint is not None:
                restored_step = self.checkpoint.latest_common_shard_step(
                    self.world_size)
            if restored_step is not None:
                for s in range(self.world_size):
                    self.checkpoint.restore_shard(
                        worker.replica, s, restored_step,
                        optimizer=worker.optimizer)
                    self._c_restores.inc()
                traced_event("dist.recover.restore", worker=w,
                             step=restored_step, shards=self.world_size)
                rows, arrays = self._replay_hot_state(donor, w)
                self._c_replayed_rows.inc(rows)
                self._c_replayed_params.inc(arrays)
                traced_event("dist.recover.replay", worker=w, donor=donor,
                             rows=rows, arrays=arrays)
            else:
                # No complete checkpoint round yet: full copy of a
                # survivor's state (correct, but not a delta).
                self._full_sync_from(donor, w)
                self._c_resyncs.inc()
            self._c_audits.inc()
            ours = _state_checksum(worker.replica, worker.optimizer)
            theirs = _state_checksum(self.workers[donor].replica,
                                     self.workers[donor].optimizer)
            if ours != theirs:
                self._c_audit_failures.inc()
                traced_event("dist.recover.audit_failed", worker=w,
                             donor=donor)
                self._full_sync_from(donor, w)
                self._c_resyncs.inc()
            now = self.clock.now()
            down_at = self.health.marked_down_at[w]
            worker.readmit(now)
            self.breakers[w].reset()
            self.health.mark_up(w, now)
            self._c_readmissions.inc()
            if down_at is not None:
                recovery_ms = now - down_at
                self.recovery_times.append(recovery_ms)
                self._h_recover.observe(recovery_ms)
                traced_event("dist.recover.readmit", worker=w,
                             recovery_ms=recovery_ms, donor=donor,
                             restored_step=restored_step)

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #

    def _checkpoint_round(self) -> None:
        """Every worker's shard saved at the current applied step.

        A down/rewarming worker's slice is *adopted* by the lowest live
        worker (replicas are in sync, so the bits are identical), which
        keeps ``latest_common_shard_step`` from lagging behind an outage.
        """
        live = self.live_workers()
        if not live:
            return
        step = self._applied
        for w in range(self.world_size):
            saver = w if self.health.is_up(w) else live[0]
            if saver != w:
                self._c_ckpt_adopted.inc()
            sw = self.workers[saver]
            self.checkpoint.save_shard(step, w, sw.replica, self.owned[w],
                                       optimizer=sw.optimizer)
        self._c_ckpt_rounds.inc()
        self._reset_replay_tracking()
        traced_event("dist.ckpt.round", step=step, adopted=len(
            [w for w in range(self.world_size) if not self.health.is_up(w)]))

    # ------------------------------------------------------------------ #
    # Step execution
    # ------------------------------------------------------------------ #

    def _shares(self, batch_size: int, live: list[int]) -> list[int]:
        """Per-worker sample counts: equal, or 1/ewma when straggling.

        Deterministic largest-remainder apportionment with a minimum of
        one sample per worker; re-weighting only kicks in when the
        slowest/fastest EWMA spread exceeds ``straggler_factor``.
        """
        k = len(live)
        if batch_size < k:
            raise ElasticError(
                f"batch of {batch_size} cannot cover {k} workers"
            )
        ewmas = [self.workers[w].ewma_ms for w in live]
        uniform = (any(e is None or e <= 0 for e in ewmas)
                   or max(ewmas) / min(ewmas) <= self.config.straggler_factor)
        weights = [1.0] * k if uniform else [1.0 / e for e in ewmas]
        if not uniform:
            self._c_straggler.inc()
            traced_event("dist.straggler", workers=list(live),
                         ewma_ms=[round(e, 3) for e in ewmas])
        total = sum(weights)
        raw = [batch_size * wt / total for wt in weights]
        counts = [max(1, int(r)) for r in raw]
        remainder = batch_size - sum(counts)
        if remainder > 0:
            order = sorted(range(k), key=lambda i: (-(raw[i] - int(raw[i])), i))
            for j in range(remainder):
                counts[order[j % k]] += 1
        while remainder < 0:
            i = max(range(k), key=lambda i: (counts[i], i))
            take = min(counts[i] - 1, -remainder)
            counts[i] -= take
            remainder += take
        return counts

    def _dispatch(self, w: int, shard: Batch, scale: float):
        """One worker's dispatch with timeout/retry/backoff.

        Returns ``(loss, sim_ms)`` or ``None`` when the worker failed the
        dispatch; failure marks the worker down fail-fast (crash) or
        strikes its breaker (timeout / net drop), evicting it only once
        the breaker opens — transient slowness doesn't shrink the fleet.
        """
        worker = self.workers[w]
        breaker = self.breakers[w]
        deadline = self.config.deadline_ms
        for attempt in range(self.config.dispatch_retries + 1):
            now = self.clock.now()
            try:
                loss, sim_ms = worker.compute_grads(shard, scale, now, deadline)
            except WorkerDown:
                self.health.mark_down(w, now, reason="dispatch")
                return None
            except (WorkerTimeout, WorkerNetDrop):
                # The supervisor waited the deadline out before giving up.
                self.clock.advance(deadline)
                if attempt < self.config.dispatch_retries:
                    self._c_dispatch_retries.inc()
                    deadline *= self.config.backoff
                    continue
                breaker.record_failure()
                if breaker.state == "open":
                    self.health.mark_down(w, self.clock.now(),
                                          reason="breaker")
                return None
            breaker.record_success()
            alpha = self.config.ewma_alpha
            worker.ewma_ms = sim_ms if worker.ewma_ms is None \
                else alpha * sim_ms + (1.0 - alpha) * worker.ewma_ms
            return loss, sim_ms
        return None  # pragma: no cover - loop always returns

    def _sync_gradients(self, live: list[int]) -> list[int]:
        """Allreduce-sum partial gradients over the participants.

        Mirrors the faithful degraded-mode semantics of
        :class:`~repro.distributed.data_parallel.DataParallelTrainer`:
        a participant the collective drops keeps its local gradient and
        is resynced after the update. Returns the dropped worker ids.
        """
        if self.comm.world_size != len(live):
            self.comm.resize(len(live))
            self._c_epochs.inc()
        reps = [self.workers[w].replica for w in live]
        groups = list(zip(*(r.parameters() for r in reps)))
        dropped_any: set[int] = set()
        for gi, group in enumerate(groups):
            total_grad = self.comm.allreduce_sum([p.grad for p in group])
            dropped = set(self.comm.last_dropped)
            dropped_any |= dropped
            touched_sets = [p.touched_rows for r, p in enumerate(group)
                            if r not in dropped and p.touched_rows is not None]
            union = None
            if touched_sets:
                union = touched_sets[0]
                for t in touched_sets[1:]:
                    union = np.union1d(union, t)
            for r, p in enumerate(group):
                if r in dropped:
                    continue
                p.grad[...] = total_grad
                p.touched_rows = union.copy() if union is not None else None
            # Replay bookkeeping: which rows the survivors will update.
            if group[0].sparse:
                known = self._replay_rows.get(gi)
                if union is None:
                    self._replay_rows[gi] = None  # full update: copy whole
                elif known is not None:
                    self._replay_rows[gi] = np.union1d(known, union)
        return sorted(live[r] for r in dropped_any)

    def train_step(self, batch: Batch) -> float:
        """Feed one global batch; re-shard over survivors until applied.

        The batch is never lost: a dispatch or membership failure aborts
        the attempt, the control plane runs (detection, eviction,
        recovery), and the *same* batch is re-sharded over the remaining
        live set — up to ``step_attempts`` times before the run aborts.
        """
        cfg = self.config
        self._step_index += 1
        self.ledger["batches_fed"] += 1
        self.ledger["samples_fed"] += batch.size
        self._fire_kills()
        record = {"batch": self._step_index, "attempts": 0}
        for _ in range(cfg.step_attempts):
            record["attempts"] += 1
            self.ledger["step_attempts"] += 1
            self._control_plane()
            live = self.live_workers()
            if not live:
                raise ElasticError("no live workers remain")
            counts = self._shares(batch.size, live)
            shards = shard_batch_counts(batch, counts)
            with traced_span("dist.step", step=str(self._step_index),
                             workers=str(len(live))):
                results = []
                failed = False
                for w, shard in zip(live, shards):
                    out = self._dispatch(w, shard, shard.size / batch.size)
                    if out is None:
                        failed = True
                        break
                    results.append(out)
                if failed:
                    self._c_retried.inc()
                    continue
                dropped = self._sync_gradients(live)
                for w in live:
                    self.workers[w].optimizer.step()
                if dropped:
                    # Post-step resync barrier for mid-collective drops.
                    clean = [w for w in live if w not in set(dropped)]
                    source = clean[0] if clean else live[0]
                    for w in dropped:
                        if w != source:
                            self._full_sync_from(source, w)
                            self._c_resyncs.inc()
            if len(live) < self.world_size:
                self._c_degraded.inc()
            self._applied += 1
            self._c_applied.inc()
            self.ledger["steps_applied"] += 1
            self.ledger["samples_applied"] += batch.size
            loss = float(sum(ls * c for (ls, _), c in zip(results, counts))
                         / batch.size)
            self.losses.append(loss)
            record.update(participants=list(live), counts=list(counts),
                          dropped=list(dropped), applied_step=self._applied,
                          loss=loss)
            self.ledger["records"].append(record)
            # The synchronous barrier costs the slowest participant.
            self.clock.advance(max(ms for _, ms in results))
            self._control_plane()
            if self.checkpoint_every \
                    and self._applied % self.checkpoint_every == 0:
                self._checkpoint_round()
            return loss
        raise ElasticError(
            f"batch {self._step_index} could not be applied in "
            f"{cfg.step_attempts} attempts"
        )

    # ------------------------------------------------------------------ #
    # Run driver
    # ------------------------------------------------------------------ #

    def quiesce(self) -> None:
        """Advance simulated time (no new faults) until the fleet is whole.

        Bounded by a budget derived from the recovery ladder, like the
        serving tier's post-traffic settle phase.
        """
        cfg = self.config
        budget = 2.0 * (self.health.detection_window_ms + cfg.restart_after_ms
                        + cfg.rewarm_ms + cfg.hang_ms) + 500.0
        deadline = self.clock.now() + budget
        while self.health.up_count < self.world_size \
                and self.clock.now() < deadline:
            self.clock.advance(cfg.heartbeat_interval_ms)
            self._control_plane(probe_faults=False)

    def train(self, batches) -> dict:
        """Run the elastic loop over an iterable of batches; quiesce;
        return the chaos-drill report (ledger, recovery, reconciliation).
        """
        for batch in batches:
            self.train_step(batch)
        self.quiesce()
        return self.report()

    def report(self) -> dict:
        reconciliation = reconcile_elastic(self)
        recovery = {
            "readmissions": self._c_readmissions.value,
            "restores": self._c_restores.value,
            "replayed_rows": self._c_replayed_rows.value,
            "replayed_params": self._c_replayed_params.value,
            "audits": self._c_audits.value,
            "audit_failures": self._c_audit_failures.value,
            "checkpoint_rounds": self._c_ckpt_rounds.value,
            "adopted_checkpoints": self._c_ckpt_adopted.value,
            "times_ms": [float(t) for t in self.recovery_times],
            "max_ms": max(self.recovery_times) if self.recovery_times else 0.0,
        }
        return {
            "world_size": self.world_size,
            "batches_fed": self.ledger["batches_fed"],
            "steps_applied": self.ledger["steps_applied"],
            "step_attempts": self.ledger["step_attempts"],
            "retried_steps": self._c_retried.value,
            "degraded_steps": self._c_degraded.value,
            "dispatch_retries": self._c_dispatch_retries.value,
            "membership_epochs": self._c_epochs.value,
            "resyncs": self._c_resyncs.value,
            "straggler_rebalances": self._c_straggler.value,
            "final_loss": self.losses[-1] if self.losses else None,
            "losses": [float(x) for x in self.losses],
            "sim_ms": self.clock.now(),
            "in_sync": self.parameters_in_sync(),
            "workers": [w.stats() for w in self.workers],
            "health": self.health.snapshot(),
            "recovery": recovery,
            "ledger": self.ledger,
            "collectives": dict(self.comm.events),
            "reconciliation": reconciliation,
        }


def reconcile_elastic(trainer: ElasticTrainer) -> dict:
    """Balance the elastic run's ledgers against its fault injector.

    Exact-ledger semantics, mirroring the serving tier's
    :func:`repro.sharding.loadgen.reconcile_sharded`: every ``dist.*``
    injector firing must surface in the matching defensive counter, no
    batch (or sample) may be lost, the fleet must end readmitted, and the
    live replicas must be bit-identical.
    """
    injector = trainer.injector
    checks: dict[str, dict] = {}
    stats = [w.stats() for w in trainer.workers]

    def counter_sum(name: str) -> int:
        return sum(s[name] for s in stats)

    if injector is not None:
        site_to_counter = {
            "dist.crash": "crashes",
            "dist.hang": "hangs",
            "dist.slow": "slows",
            "dist.net_drop": "net_drops",
        }
        for site, counter in site_to_counter.items():
            checks[site] = {
                "fired": injector.fired.get(site, 0),
                "counted": counter_sum(counter),
            }
    checks["no_lost_batches"] = {
        "fired": trainer.ledger["batches_fed"],
        "counted": trainer.ledger["steps_applied"],
    }
    checks["no_lost_samples"] = {
        "fired": trainer.ledger["samples_fed"],
        "counted": trainer.ledger["samples_applied"],
    }
    checks["fleet_readmitted"] = {
        "fired": trainer.world_size,
        "counted": trainer.health.up_count,
    }
    checks["replicas_in_sync"] = {
        "fired": 1,
        "counted": int(trainer.parameters_in_sync()),
    }
    for check in checks.values():
        check["passed"] = check["fired"] == check["counted"]
    return {
        "checked": injector is not None,
        "passed": all(c["passed"] for c in checks.values()),
        "checks": checks,
    }
