"""Synchronous data-parallel training over K simulated workers.

Each worker holds a full replica (TT-Rec fits on every device — the §5
point). A global batch is split into K equal shards; workers compute
forward/backward locally; gradients are averaged with one allreduce; every
replica then applies the identical update.

Because gradient averaging over equal shards equals the gradient of the
full batch (BCE is a mean), K-worker training is *bit-equivalent* to
single-worker training on the unsharded batch — which the test suite
asserts exactly. That equivalence is what makes the simulated cluster a
faithful stand-in for a real synchronous cluster.

Degraded collectives model the real failure faithfully: a worker the
allreduce drops does **not** receive the reduced gradient — it keeps its
local one, takes a divergent update, and is therefore out of sync until
the post-step resync barrier copies a clean replica's parameters over it
(``resync_replicas``). The barrier is what keeps ``parameters_in_sync``
true across chaos runs; before it existed the simulator silently handed
dropped workers the reduced gradient, hiding the drift a real cluster
would suffer.
"""

from __future__ import annotations

import numpy as np

from repro.data.batching import Batch
from repro.distributed.collectives import Communicator
from repro.models.dlrm import DLRM
from repro.models.serialization import load_state_dict, state_dict
from repro.ops.loss import bce_with_logits
from repro.ops.optim import SparseSGD
from repro.telemetry import get_registry

__all__ = ["DataParallelTrainer", "shard_batch", "shard_batch_counts"]


def shard_batch_counts(batch: Batch, counts: list[int]) -> list[Batch]:
    """Split a batch into contiguous shards of explicit sizes.

    ``counts`` must be positive and sum to the batch size. The equal-shard
    :func:`shard_batch` is the ``counts = [B/K] * K`` special case; the
    elastic runtime passes uneven counts when re-sharding a batch over
    survivors or de-weighting a straggler.
    """
    b = batch.size
    if any(c < 1 for c in counts):
        raise ValueError(f"every shard needs at least one sample, got {counts}")
    if sum(counts) != b:
        raise ValueError(
            f"shard counts {counts} sum to {sum(counts)}, batch size is {b}"
        )
    bounds = np.concatenate(([0], np.cumsum(counts)))
    shards = []
    for w in range(len(counts)):
        lo, hi = int(bounds[w]), int(bounds[w + 1])
        sparse = []
        weights = [] if batch.per_sample_weights is not None else None
        for t, (indices, offsets) in enumerate(batch.sparse):
            start, end = offsets[lo], offsets[hi]
            sparse.append((indices[start:end], offsets[lo:hi + 1] - offsets[lo]))
            if weights is not None:
                weights.append(batch.per_sample_weights[t][start:end])
        shards.append(Batch(
            dense=batch.dense[lo:hi],
            sparse=sparse,
            labels=batch.labels[lo:hi],
            per_sample_weights=weights,
        ))
    return shards


def shard_batch(batch: Batch, world_size: int) -> list[Batch]:
    """Split a batch into ``world_size`` equal contiguous shards.

    The batch size must divide evenly — real synchronous SGD pads or drops
    remainders; we require exactness so the equivalence theorem holds
    bit-for-bit.
    """
    b = batch.size
    if b % world_size != 0:
        raise ValueError(
            f"batch size {b} is not divisible by world size {world_size}"
        )
    return shard_batch_counts(batch, [b // world_size] * world_size)


class DataParallelTrainer:
    """K synchronized replicas with gradient-allreduce SGD.

    Parameters
    ----------
    replicas:
        K structurally-identical models. Their parameters are forcibly
        synchronized to replica 0's values at construction (as a real DP
        launcher broadcasts rank 0's weights).
    lr:
        Learning rate of the per-replica SparseSGD.
    comm:
        Optional shared :class:`Communicator` (for byte accounting).
    injector:
        Optional :class:`~repro.reliability.fault_injection.FaultInjector`
        handed to a freshly built communicator (ignored when ``comm`` is
        given — attach the injector to that communicator instead). With an
        injector, gradient allreduces run in degraded mode: corrupted
        payloads are detected and retried, dropped workers are excluded
        and the mean renormalises over survivors (see
        :mod:`repro.distributed.collectives`).
    """

    def __init__(self, replicas: list[DLRM], *, lr: float = 0.1,
                 comm: Communicator | None = None, injector=None):
        if not replicas:
            raise ValueError("need at least one replica")
        self.replicas = list(replicas)
        self.comm = comm if comm is not None else Communicator(
            len(replicas), injector=injector
        )
        if self.comm.world_size != len(replicas):
            raise ValueError(
                f"communicator world size {self.comm.world_size} != "
                f"{len(replicas)} replicas"
            )
        # Broadcast rank 0's weights.
        reference = state_dict(self.replicas[0])
        for replica in self.replicas[1:]:
            load_state_dict(replica, reference)
        self.optimizers = [SparseSGD(r.parameters(), lr=lr) for r in self.replicas]
        self._c_resyncs = get_registry().counter("dist.resyncs")

    @property
    def world_size(self) -> int:
        return len(self.replicas)

    @property
    def resyncs(self) -> int:
        """Replicas re-synchronized after degraded collectives (run total)."""
        return self._c_resyncs.value

    def train_step(self, batch: Batch) -> float:
        """One synchronous step over a global batch; returns the mean loss."""
        shards = shard_batch(batch, self.world_size)
        losses = []
        for replica, opt, shard in zip(self.replicas, self.optimizers, shards):
            opt.zero_grad()
            logits = replica.forward(shard.dense, shard.sparse,
                                     shard.per_sample_weights)
            loss, grad = bce_with_logits(logits, shard.labels)
            replica.backward(grad)
            losses.append(loss)
        dropped = self._sync_gradients()
        for opt in self.optimizers:
            opt.step()
        if dropped:
            # Post-step resync barrier: the dropped ranks just applied a
            # local (un-reduced) gradient and have drifted; copy a clean
            # survivor's parameters over them before the next step.
            self.resync_replicas(dropped)
        return float(np.mean(losses))

    def _sync_gradients(self) -> list[int]:
        """Allreduce-average gradients; union sparse touched-row sets.

        Survivors receive the reduced gradient and the survivors' touched
        union; a rank the collective dropped keeps its local gradient and
        local touched rows — exactly what a real dropped worker would
        apply. Returns the ranks dropped from any group's allreduce.
        """
        param_groups = list(zip(*(r.parameters() for r in self.replicas)))
        dropped_any: set[int] = set()
        for group in param_groups:
            mean_grad = self.comm.allreduce_mean([p.grad for p in group])
            dropped = set(self.comm.last_dropped)
            dropped_any |= dropped
            touched_sets = [p.touched_rows for rank, p in enumerate(group)
                            if rank not in dropped and p.touched_rows is not None]
            union = None
            if touched_sets:
                union = touched_sets[0]
                for t in touched_sets[1:]:
                    union = np.union1d(union, t)
            for rank, p in enumerate(group):
                if rank in dropped:
                    continue
                p.grad[...] = mean_grad
                p.touched_rows = union.copy() if union is not None else None
        return sorted(dropped_any)

    def resync_replicas(self, ranks: list[int], *,
                        source: int | None = None) -> int:
        """Bitwise-copy a clean replica's parameters over drifted ranks.

        ``source`` defaults to the lowest rank not in ``ranks`` (every
        collective keeps at least one survivor, so one exists whenever
        ``ranks`` came from a single step; if the caller accumulated
        drops across steps until no rank is clean, rank 0 is used — the
        fleet ends consistent, anchored to rank 0's state). Returns the
        number of replicas rewritten.
        """
        if source is None:
            clean = [r for r in range(self.world_size) if r not in set(ranks)]
            source = clean[0] if clean else 0
        reference = state_dict(self.replicas[source])
        synced = 0
        for rank in ranks:
            if rank == source:
                continue
            load_state_dict(self.replicas[rank], reference)
            synced += 1
        if synced:
            self._c_resyncs.inc(synced)
        return synced

    @property
    def fault_events(self) -> dict[str, int]:
        """The communicator's degraded-mode counters (report-ready copy)."""
        return dict(self.comm.events)

    def parameters_in_sync(self, atol: float = 0.0) -> bool:
        """True when every replica holds identical parameter values."""
        ref = self.replicas[0].parameters()
        for replica in self.replicas[1:]:
            for a, b in zip(ref, replica.parameters()):
                if not np.allclose(a.data, b.data, atol=atol, rtol=0.0):
                    return False
        return True
