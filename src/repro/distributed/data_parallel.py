"""Synchronous data-parallel training over K simulated workers.

Each worker holds a full replica (TT-Rec fits on every device — the §5
point). A global batch is split into K equal shards; workers compute
forward/backward locally; gradients are averaged with one allreduce; every
replica then applies the identical update.

Because gradient averaging over equal shards equals the gradient of the
full batch (BCE is a mean), K-worker training is *bit-equivalent* to
single-worker training on the unsharded batch — which the test suite
asserts exactly. That equivalence is what makes the simulated cluster a
faithful stand-in for a real synchronous cluster.
"""

from __future__ import annotations

import numpy as np

from repro.data.batching import Batch
from repro.distributed.collectives import Communicator
from repro.models.dlrm import DLRM
from repro.models.serialization import load_state_dict, state_dict
from repro.ops.loss import bce_with_logits
from repro.ops.optim import SparseSGD

__all__ = ["DataParallelTrainer", "shard_batch"]


def shard_batch(batch: Batch, world_size: int) -> list[Batch]:
    """Split a batch into ``world_size`` equal contiguous shards.

    The batch size must divide evenly — real synchronous SGD pads or drops
    remainders; we require exactness so the equivalence theorem holds
    bit-for-bit.
    """
    b = batch.size
    if b % world_size != 0:
        raise ValueError(
            f"batch size {b} is not divisible by world size {world_size}"
        )
    per = b // world_size
    shards = []
    for w in range(world_size):
        lo, hi = w * per, (w + 1) * per
        sparse = []
        weights = [] if batch.per_sample_weights is not None else None
        for t, (indices, offsets) in enumerate(batch.sparse):
            start, end = offsets[lo], offsets[hi]
            sparse.append((indices[start:end], offsets[lo:hi + 1] - offsets[lo]))
            if weights is not None:
                weights.append(batch.per_sample_weights[t][start:end])
        shards.append(Batch(
            dense=batch.dense[lo:hi],
            sparse=sparse,
            labels=batch.labels[lo:hi],
            per_sample_weights=weights,
        ))
    return shards


class DataParallelTrainer:
    """K synchronized replicas with gradient-allreduce SGD.

    Parameters
    ----------
    replicas:
        K structurally-identical models. Their parameters are forcibly
        synchronized to replica 0's values at construction (as a real DP
        launcher broadcasts rank 0's weights).
    lr:
        Learning rate of the per-replica SparseSGD.
    comm:
        Optional shared :class:`Communicator` (for byte accounting).
    injector:
        Optional :class:`~repro.reliability.fault_injection.FaultInjector`
        handed to a freshly built communicator (ignored when ``comm`` is
        given — attach the injector to that communicator instead). With an
        injector, gradient allreduces run in degraded mode: corrupted
        payloads are detected and retried, dropped workers are excluded
        and the mean renormalises over survivors (see
        :mod:`repro.distributed.collectives`).
    """

    def __init__(self, replicas: list[DLRM], *, lr: float = 0.1,
                 comm: Communicator | None = None, injector=None):
        if not replicas:
            raise ValueError("need at least one replica")
        self.replicas = list(replicas)
        self.comm = comm if comm is not None else Communicator(
            len(replicas), injector=injector
        )
        if self.comm.world_size != len(replicas):
            raise ValueError(
                f"communicator world size {self.comm.world_size} != "
                f"{len(replicas)} replicas"
            )
        # Broadcast rank 0's weights.
        reference = state_dict(self.replicas[0])
        for replica in self.replicas[1:]:
            load_state_dict(replica, reference)
        self.optimizers = [SparseSGD(r.parameters(), lr=lr) for r in self.replicas]

    @property
    def world_size(self) -> int:
        return len(self.replicas)

    def train_step(self, batch: Batch) -> float:
        """One synchronous step over a global batch; returns the mean loss."""
        shards = shard_batch(batch, self.world_size)
        losses = []
        for replica, opt, shard in zip(self.replicas, self.optimizers, shards):
            opt.zero_grad()
            logits = replica.forward(shard.dense, shard.sparse,
                                     shard.per_sample_weights)
            loss, grad = bce_with_logits(logits, shard.labels)
            replica.backward(grad)
            losses.append(loss)
        self._sync_gradients()
        for opt in self.optimizers:
            opt.step()
        return float(np.mean(losses))

    def _sync_gradients(self) -> None:
        """Allreduce-average gradients; union sparse touched-row sets."""
        param_groups = list(zip(*(r.parameters() for r in self.replicas)))
        for group in param_groups:
            mean_grad = self.comm.allreduce_mean([p.grad for p in group])
            touched_sets = [p.touched_rows for p in group if p.touched_rows is not None]
            union = None
            if touched_sets:
                union = touched_sets[0]
                for t in touched_sets[1:]:
                    union = np.union1d(union, t)
            for p in group:
                p.grad[...] = mean_grad
                p.touched_rows = union.copy() if union is not None else None

    @property
    def fault_events(self) -> dict[str, int]:
        """The communicator's degraded-mode counters (report-ready copy)."""
        return dict(self.comm.events)

    def parameters_in_sync(self, atol: float = 0.0) -> bool:
        """True when every replica holds identical parameter values."""
        ref = self.replicas[0].parameters()
        for replica in self.replicas[1:]:
            for a, b in zip(ref, replica.parameters()):
                if not np.allclose(a.data, b.data, atol=atol, rtol=0.0):
                    return False
        return True
