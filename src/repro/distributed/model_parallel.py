"""Model-parallel DLRM: sharded embedding tables + all-to-all exchange.

This is the layout the paper says the *uncompressed* baseline is forced
into once tables exceed device memory (§5): embedding tables are
partitioned across workers (each table lives wholly on one worker,
assigned by greedy size balancing), the batch is partitioned across the
same workers, and every iteration performs the classic DLRM hybrid-
parallel dance:

1. table owners compute pooled embedding vectors for the *whole* batch;
2. an **all-to-all** redistributes them from table-sharded to
   batch-sharded layout;
3. each worker runs the (replicated) bottom/top MLPs and interaction on
   its batch shard;
4. backward reverses the all-to-all for embedding gradients, and the MLP
   gradients are allreduced to keep replicas in sync.

The simulation is exact: ``from_dlrm`` builds the sharded layout from an
existing single-worker DLRM, and a training step produces bit-identical
logits, gradients and updates (asserted in tests) while the shared
:class:`~repro.distributed.collectives.Communicator` tallies the traffic
that a real cluster would pay — the overhead TT-Rec's data parallelism
avoids.
"""

from __future__ import annotations

import numpy as np

from repro.data.batching import Batch
from repro.distributed.collectives import Communicator
from repro.distributed.data_parallel import shard_batch
from repro.models.config import DLRMConfig
from repro.models.dlrm import DLRM
from repro.ops.interaction import CatInteraction, DotInteraction
from repro.ops.loss import bce_with_logits
from repro.ops.mlp import MLP
from repro.ops.optim import SparseSGD

__all__ = ["ShardedEmbeddingDLRM", "assign_tables", "partition_parameters"]


def assign_tables(table_sizes: tuple[int, ...], world_size: int, *,
                  refine: bool = True) -> list[int]:
    """Balanced assignment: table index -> owning worker.

    Longest-processing-time (LPT) greedy: tables are placed largest first
    onto the least-loaded worker, with deterministic tie-breaking (equal
    sizes in table-index order, equal loads to the lowest worker id).
    LPT alone guarantees ``max_load - min_load <= max(table_sizes)``; on
    skewed DLRM size distributions (one giant table plus a long tail)
    that residual can still be the whole giant table, so a local-search
    refinement pass then moves single tables off the most-loaded worker
    whenever doing so strictly shrinks the max/min spread. The result is
    the capacity-driven sharding both :class:`ShardedEmbeddingDLRM` and
    the serving tier's :mod:`repro.sharding` topology use.
    """
    if world_size < 1:
        raise ValueError(f"world_size must be >= 1, got {world_size}")
    owner = [0] * len(table_sizes)
    load = [0] * world_size
    # LPT order: size descending, table index ascending on ties.
    for t in sorted(range(len(table_sizes)),
                    key=lambda i: (-table_sizes[i], i)):
        w = min(range(world_size), key=lambda i: (load[i], i))
        owner[t] = w
        load[w] += table_sizes[t]
    if not refine or world_size == 1 or not table_sizes:
        return owner
    # Local search: move one table from the heaviest to the lightest
    # worker while it strictly reduces the spread. Each accepted move
    # shrinks (max - min), so the loop terminates.
    while True:
        hi = max(range(world_size), key=lambda i: (load[i], -i))
        lo = min(range(world_size), key=lambda i: (load[i], i))
        spread = load[hi] - load[lo]
        if spread <= 0:
            return owner
        best_t, best_spread = None, spread
        for t in sorted(range(len(table_sizes))):
            if owner[t] != hi:
                continue
            size = table_sizes[t]
            moved = max(load[hi] - size, load[lo] + size)
            others = [load[w] for w in range(world_size) if w not in (hi, lo)]
            new_max = max([moved, *others])
            new_min = min([min(load[hi] - size, load[lo] + size), *others])
            if new_max - new_min < best_spread:
                best_t, best_spread = t, new_max - new_min
        if best_t is None:
            return owner
        load[hi] -= table_sizes[best_t]
        load[lo] += table_sizes[best_t]
        owner[best_t] = lo


def partition_parameters(model, world_size: int) -> list[int]:
    """Checkpoint-shard ownership: parameter index -> owning worker.

    The elastic data-parallel runtime replicates the whole model on every
    worker, but each worker *owns* a slice of it for checkpointing: the
    K shard-delta checkpoints together cover the model, so any one lost
    replica can be rebuilt from the survivors' last checkpoint round.
    Ownership is PS-style balanced by parameter byte count using the same
    LPT + local-search assignment as the embedding-table layout (a TT
    table's cores are naturally grouped by size here, and the dense MLP
    parameters spread across whichever workers are lightest).
    """
    sizes = tuple(int(p.data.size) for p in model.parameters())
    return assign_tables(sizes, world_size)


class _Tower:
    """One worker's replicated MLP stack (bottom, interaction, top)."""

    def __init__(self, config: DLRMConfig, reference: DLRM):
        self.bottom = MLP(config.bottom_sizes(), rng=0)
        self.top = MLP(config.top_sizes(), rng=0)
        if config.interaction == "dot":
            self.interaction = DotInteraction()
        else:
            self.interaction = CatInteraction()
        # Clone the reference DLRM's tower weights exactly.
        for mine, ref in ((self.bottom, reference.bottom_mlp),
                          (self.top, reference.top_mlp)):
            for a, b in zip(mine.parameters(), ref.parameters()):
                a.data[...] = b.data

    def parameters(self):
        return self.bottom.parameters() + self.top.parameters()

    def zero_grad(self):
        for p in self.parameters():
            p.zero_grad()


class ShardedEmbeddingDLRM:
    """Hybrid-parallel DLRM: sharded embeddings, replicated MLP towers."""

    def __init__(self, config: DLRMConfig, embeddings: list, world_size: int, *,
                 reference: DLRM, comm: Communicator | None = None,
                 lr: float = 0.1):
        if len(embeddings) != config.num_tables:
            raise ValueError(
                f"expected {config.num_tables} embeddings, got {len(embeddings)}"
            )
        self.config = config
        self.world_size = world_size
        self.comm = comm if comm is not None else Communicator(world_size)
        if self.comm.world_size != world_size:
            raise ValueError("communicator world size mismatch")
        self.embeddings = list(embeddings)
        self.owner = assign_tables(config.table_sizes, world_size)
        self.towers = [_Tower(config, reference) for _ in range(world_size)]
        self.lr = lr
        self._emb_optimizers = [
            SparseSGD(
                [p for t, e in enumerate(self.embeddings) if self.owner[t] == w
                 for p in e.parameters()] or [],
                lr=lr,
            ) if any(self.owner[t] == w for t in range(config.num_tables))
            else None
            for w in range(world_size)
        ]
        self._tower_optimizers = [
            SparseSGD(tower.parameters(), lr=lr) for tower in self.towers
        ]
        self._cache: dict | None = None

    @classmethod
    def from_dlrm(cls, model: DLRM, world_size: int, *,
                  comm: Communicator | None = None,
                  lr: float = 0.1) -> "ShardedEmbeddingDLRM":
        """Re-layout an existing DLRM across ``world_size`` workers.

        The embedding modules are *moved* (shared by reference, as a real
        re-shard would move the memory); the MLP towers are cloned per
        worker.
        """
        return cls(model.config, model.embeddings, world_size,
                   reference=model, comm=comm, lr=lr)

    # ------------------------------------------------------------------ #

    def tables_of(self, worker: int) -> list[int]:
        return [t for t, w in enumerate(self.owner) if w == worker]

    def per_worker_embedding_bytes(self, dtype_bytes: int = 4) -> list[int]:
        """Embedding memory each worker holds (the §5 capacity constraint)."""
        out = [0] * self.world_size
        for t, emb in enumerate(self.embeddings):
            out[self.owner[t]] += emb.num_parameters() * dtype_bytes
        return out

    def forward(self, batch: Batch) -> np.ndarray:
        """Global-batch logits via the hybrid-parallel dataflow."""
        shards = shard_batch(batch, self.world_size)
        per = shards[0].size

        # Phase 1: owners compute pooled vectors for the whole batch.
        pooled: dict[int, np.ndarray] = {}
        for t, (indices, offsets) in enumerate(batch.sparse):
            w = batch.per_sample_weights[t] if batch.per_sample_weights else None
            pooled[t] = self.embeddings[t].forward(indices, offsets, w)

        # Phase 2: all-to-all from table-sharded to batch-sharded layout.
        # chunks[i][j]: worker i's tables, batch shard j.
        chunks = []
        for i in range(self.world_size):
            tables_i = self.tables_of(i)
            row = []
            for j in range(self.world_size):
                lo, hi = j * per, (j + 1) * per
                if tables_i:
                    row.append(np.stack([pooled[t][lo:hi] for t in tables_i]))
                else:
                    row.append(np.zeros((0, per, self.config.emb_dim)))
            chunks.append(row)
        received = self.comm.all_to_all(chunks)

        # Phase 3: per-worker towers on their batch shard.
        logits_shards = []
        shard_pooled: list[list[np.ndarray]] = []
        for j in range(self.world_size):
            by_table: dict[int, np.ndarray] = {}
            for i in range(self.world_size):
                for slot, t in enumerate(self.tables_of(i)):
                    by_table[t] = received[j][i][slot]
            ordered = [by_table[t] for t in range(self.config.num_tables)]
            shard_pooled.append(ordered)
            tower = self.towers[j]
            x = tower.bottom.forward(shards[j].dense)
            z = tower.interaction.forward(x, ordered)
            logits_shards.append(tower.top.forward(z).reshape(-1))

        self._cache = {"batch": batch, "per": per}
        return np.concatenate(logits_shards)

    def train_step(self, batch: Batch) -> float:
        """One hybrid-parallel iteration; returns the global-batch loss."""
        logits = self.forward(batch)
        loss, grad_logits = bce_with_logits(logits, batch.labels)
        self.backward(grad_logits)
        self.step()
        return loss

    def backward(self, grad_logits: np.ndarray) -> None:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        per = self._cache["per"]
        grad_logits = np.asarray(grad_logits, dtype=np.float64).reshape(-1)

        # Per-worker tower backward on its shard.
        grad_chunks: list[list[np.ndarray]] = [
            [None] * self.world_size for _ in range(self.world_size)
        ]
        for j in range(self.world_size):
            tower = self.towers[j]
            tower.zero_grad()
            g = grad_logits[j * per:(j + 1) * per].reshape(-1, 1)
            grad_z = tower.top.backward(g)
            grad_x, grad_pooled = tower.interaction.backward(grad_z)
            tower.bottom.backward(grad_x)
            # Package embedding grads for the reverse all-to-all:
            # destination i receives grads of its tables for shard j.
            for i in range(self.world_size):
                tables_i = self.tables_of(i)
                if tables_i:
                    grad_chunks[j][i] = np.stack([grad_pooled[t] for t in tables_i])
                else:
                    grad_chunks[j][i] = np.zeros((0, per, self.config.emb_dim))
        received = self.comm.all_to_all(grad_chunks)

        # Owners reassemble full-batch gradients and run embedding backward.
        for i in range(self.world_size):
            for slot, t in enumerate(self.tables_of(i)):
                full = np.concatenate(
                    [received[i][j][slot] for j in range(self.world_size)], axis=0
                )
                self.embeddings[t].backward(full)

        # Keep the replicated towers in sync. Each tower's gradient is the
        # *partial* contribution of its batch shard to the global-mean loss
        # (the 1/B lives in grad_logits already), so the reduction is a sum.
        groups = list(zip(*(tower.parameters() for tower in self.towers)))
        for group in groups:
            total_grad = self.comm.allreduce_sum([p.grad for p in group])
            for p in group:
                p.grad[...] = total_grad

    def step(self) -> None:
        for opt in self._emb_optimizers:
            if opt is not None:
                opt.step()
        for opt in self._tower_optimizers:
            opt.step()

    def zero_grad(self) -> None:
        for e in self.embeddings:
            if hasattr(e, "zero_grad"):
                e.zero_grad()
        for tower in self.towers:
            tower.zero_grad()
