"""Byte-accounted collective operations for the in-process simulator.

A ``Communicator`` plays the role of NCCL/Gloo for K simulated workers:
the collectives are computed exactly (plain NumPy) while tallying the
bytes a real ring implementation would move, so benchmarks can compare
measured traffic against the analytic alpha-beta model.

Fault tolerance
---------------
When a :class:`~repro.reliability.fault_injection.FaultInjector` is
attached, every collective runs in *degraded mode*:

- each worker's contribution is "transmitted" with a CRC32 checksum;
  injected corruption (``collective.payload``) is detected at the
  receiver and the transfer is retried up to ``max_retries`` times;
- a worker whose transfers never verify, or that the injector drops
  outright (``collective.drop``), is excluded from the collective:
  ``allreduce_mean`` renormalises over the survivors, ``allreduce_sum``
  rescales by ``K / survivors`` (an unbiased estimate of the full sum),
  and ``allgather`` returns only the surviving contributions (ranks
  recorded in ``last_dropped``);
- injected stragglers (``collective.straggler``) are counted but never
  slept on.

All byte/count/degradation counters live in the shared telemetry
registry (``collective.bytes{op=...}``, ``collective.events{event=...}``,
labelled per communicator instance); the ``bytes_*``/``num_collectives``
attributes and the ``events`` dict remain as thin read views so existing
benchmark reports keep working. With no injector attached the fast exact
path runs unchanged.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.telemetry import emit_event, get_registry, trace

__all__ = ["Communicator", "CollectiveError"]

# Degradation-event counter names (also the keys of ``Communicator.events``).
_EVENT_NAMES = (
    "corruptions_detected",
    "retries",
    "workers_dropped",
    "degraded_collectives",
    "collective_restarts",
    "stragglers",
)

# Distinguishes communicator instances in the shared metrics registry.
_INSTANCE_SEQ = 0


class CollectiveError(RuntimeError):
    """A collective could not complete (every worker failed)."""


class Communicator:
    """Collectives over K simulated workers with ring-traffic accounting.

    Byte accounting follows the standard ring-collective costs:

    - allreduce of ``S`` bytes: each worker sends ``2 S (K-1)/K``;
    - allgather of per-worker ``S`` bytes: each sends ``S (K-1)``··/K·K
      — total ``S (K-1)`` crosses the wire per worker's contribution;
    - all-to-all where worker i sends ``S_ij`` to worker j: exactly the
      off-diagonal volume crosses the wire.

    Parameters
    ----------
    world_size:
        Number of simulated workers.
    injector:
        Optional :class:`~repro.reliability.fault_injection.FaultInjector`;
        attaching one enables degraded-mode execution (see module docs).
    max_retries:
        Re-transmissions attempted per worker per collective before the
        worker is declared failed for that collective.
    """

    def __init__(self, world_size: int, *, injector=None, max_retries: int = 2):
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.world_size = world_size
        self.injector = injector
        self.max_retries = max_retries
        self.last_dropped: list[int] = []
        # All counters live in the shared metrics registry under a
        # per-instance ``comm`` label; the byte/count attributes and the
        # ``events`` dict the benchmarks read are thin views over them.
        global _INSTANCE_SEQ
        self.metrics_label = f"comm#{_INSTANCE_SEQ}"
        _INSTANCE_SEQ += 1
        reg = get_registry()
        self._c_bytes = {
            op: reg.counter("collective.bytes", op=op, comm=self.metrics_label)
            for op in ("allreduce", "allgather", "all_to_all")
        }
        self._c_count = reg.counter("collective.count", comm=self.metrics_label)
        self._c_events = {
            name: reg.counter("collective.events", event=name,
                              comm=self.metrics_label)
            for name in _EVENT_NAMES
        }

    @property
    def bytes_allreduce(self) -> int:
        return self._c_bytes["allreduce"].value

    @property
    def bytes_allgather(self) -> int:
        return self._c_bytes["allgather"].value

    @property
    def bytes_all_to_all(self) -> int:
        return self._c_bytes["all_to_all"].value

    @property
    def num_collectives(self) -> int:
        return self._c_count.value

    @property
    def events(self) -> dict[str, int]:
        """Degradation-event counters as a plain dict (report-ready copy)."""
        return {name: c.value for name, c in self._c_events.items()}

    @property
    def total_bytes(self) -> int:
        return self.bytes_allreduce + self.bytes_all_to_all + self.bytes_allgather

    def reset_counters(self) -> None:
        for counter in self._c_bytes.values():
            counter.reset()
        self._c_count.reset()
        for counter in self._c_events.values():
            counter.reset()
        self.last_dropped = []

    def resize(self, world_size: int) -> None:
        """Change the participant count (an elastic membership epoch).

        A real elastic launcher rebuilds the process group when workers
        leave or rejoin; here only the expected buffer count and the ring
        byte model change. Byte/event counters carry across epochs —
        they account for the whole run, not one membership.
        """
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        if world_size != self.world_size:
            self.world_size = world_size
            self.last_dropped = []
            emit_event("collective.resized", comm=self.metrics_label,
                       world_size=world_size)

    # ------------------------------------------------------------------ #
    # Degraded-mode plumbing
    # ------------------------------------------------------------------ #

    def _transmit(self, buffer: np.ndarray) -> np.ndarray | None:
        """Move one buffer through the (faulty) wire, checksum-verified.

        The sender's CRC32 travels with the payload (assumed intact, as a
        real transport frames it); a mismatch at the receiver triggers a
        re-transmission. Returns the verified payload, or ``None`` when
        ``max_retries`` re-transmissions all arrive corrupted.
        """
        if self.injector.fires("collective.straggler"):
            self._c_events["stragglers"].inc()
        expected = zlib.crc32(buffer.tobytes())
        for attempt in range(self.max_retries + 1):
            payload = buffer.copy()
            self.injector.corrupt("collective.payload", payload)
            if zlib.crc32(payload.tobytes()) == expected:
                return payload
            self._c_events["corruptions_detected"].inc()
            if attempt < self.max_retries:
                self._c_events["retries"].inc()
        return None

    def _collect(self, buffers: list[np.ndarray]) -> list[np.ndarray]:
        """Gather each worker's verified contribution, dropping failures.

        A collective that loses *every* worker is restarted (faults are
        transient) up to ``max_retries`` times before raising
        :class:`CollectiveError`.
        """
        for restart in range(self.max_retries + 1):
            contributions = []
            dropped = []
            for rank, buffer in enumerate(buffers):
                if self.injector.fires("collective.drop"):
                    dropped.append(rank)
                    continue
                payload = self._transmit(buffer)
                if payload is None:
                    dropped.append(rank)
                    continue
                contributions.append(payload)
            if contributions:
                self.last_dropped = dropped
                if dropped:
                    self._c_events["workers_dropped"].inc(len(dropped))
                    self._c_events["degraded_collectives"].inc()
                    emit_event("collective.degraded", comm=self.metrics_label,
                               dropped_ranks=dropped,
                               survivors=len(contributions))
                return contributions
            self._c_events["collective_restarts"].inc()
        raise CollectiveError(
            f"all {self.world_size} workers failed the collective in "
            f"{self.max_retries + 1} attempts (dropped or unrecoverably "
            "corrupted payloads)"
        )

    # ------------------------------------------------------------------ #

    def allreduce_mean(self, buffers: list[np.ndarray]) -> np.ndarray:
        """Average one array across workers; every worker gets the result.

        ``buffers`` holds worker ``i``'s contribution at position ``i``.
        Accumulation runs in float64 and the result is cast back to the
        input dtype, so float32 workers keep float32 gradients. Under an
        injector, failed workers are dropped and the mean renormalises
        over the survivors.
        """
        self._check(buffers)
        k = self.world_size
        size = buffers[0].nbytes
        if k > 1:
            self._c_bytes["allreduce"].inc(int(2 * size * (k - 1) / k) * k)
        self._c_count.inc()
        with trace("collective.allreduce", op="mean"):
            contributions = buffers if self.injector is None else self._collect(buffers)
            out = contributions[0].astype(np.float64, copy=True)
            for b in contributions[1:]:
                out += b
            out /= len(contributions)
            return out.astype(buffers[0].dtype, copy=False)

    def allreduce_sum(self, buffers: list[np.ndarray]) -> np.ndarray:
        """Sum one array across workers; every worker gets the result.

        Used where each worker holds a *partial* contribution to a global
        quantity (e.g. MLP gradients of a loss whose 1/B normalisation was
        already applied globally) — contrast with :meth:`allreduce_mean`
        for shard-local means. Under an injector, the survivor sum is
        rescaled by ``K / survivors`` so its magnitude stays an unbiased
        estimate of the full sum.
        """
        self._check(buffers)
        k = self.world_size
        size = buffers[0].nbytes
        if k > 1:
            self._c_bytes["allreduce"].inc(int(2 * size * (k - 1) / k) * k)
        self._c_count.inc()
        with trace("collective.allreduce", op="sum"):
            contributions = buffers if self.injector is None else self._collect(buffers)
            out = contributions[0].astype(np.float64, copy=True)
            for b in contributions[1:]:
                out += b
            if len(contributions) != k:
                out *= k / len(contributions)
            return out.astype(buffers[0].dtype, copy=False)

    def allgather(self, buffers: list[np.ndarray]) -> list[np.ndarray]:
        """Every worker receives every worker's array (returned as a list).

        Under an injector, failed workers' contributions are omitted from
        the result (their ranks are recorded in ``last_dropped``), so the
        returned list may be shorter than ``world_size``.
        """
        self._check(buffers)
        k = self.world_size
        if k > 1:
            self._c_bytes["allgather"].inc(sum(int(b.nbytes) * (k - 1) for b in buffers))
        self._c_count.inc()
        with trace("collective.allgather"):
            if self.injector is None:
                return [b.copy() for b in buffers]
            return self._collect(buffers)

    def all_to_all(self, chunks: list[list[np.ndarray]]) -> list[list[np.ndarray]]:
        """Transpose a K x K grid of arrays: worker ``i``'s ``chunks[i][j]``
        is delivered to worker ``j`` as ``result[j][i]``.

        Only off-diagonal chunks (actual remote traffic) are billed.
        """
        k = self.world_size
        if len(chunks) != k or any(len(row) != k for row in chunks):
            raise ValueError(f"expected a {k}x{k} grid of chunks")
        for i in range(k):
            for j in range(k):
                if i != j:
                    self._c_bytes["all_to_all"].inc(int(chunks[i][j].nbytes))
        self._c_count.inc()
        with trace("collective.all_to_all"):
            return [[chunks[i][j].copy() for i in range(k)] for j in range(k)]

    # ------------------------------------------------------------------ #

    def _check(self, buffers: list[np.ndarray]) -> None:
        if len(buffers) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} buffers, got {len(buffers)}"
            )
        shape = buffers[0].shape
        for i, b in enumerate(buffers[1:], start=1):
            if b.shape != shape:
                raise ValueError(
                    f"buffer {i} has shape {b.shape}, expected {shape}"
                )
