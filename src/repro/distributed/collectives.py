"""Byte-accounted collective operations for the in-process simulator.

A ``Communicator`` plays the role of NCCL/Gloo for K simulated workers:
the collectives are computed exactly (plain NumPy) while tallying the
bytes a real ring implementation would move, so benchmarks can compare
measured traffic against the analytic alpha-beta model.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Communicator"]


class Communicator:
    """Collectives over K simulated workers with ring-traffic accounting.

    Byte accounting follows the standard ring-collective costs:

    - allreduce of ``S`` bytes: each worker sends ``2 S (K-1)/K``;
    - allgather of per-worker ``S`` bytes: each sends ``S (K-1)``··/K·K
      — total ``S (K-1)`` crosses the wire per worker's contribution;
    - all-to-all where worker i sends ``S_ij`` to worker j: exactly the
      off-diagonal volume crosses the wire.
    """

    def __init__(self, world_size: int):
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        self.world_size = world_size
        self.bytes_allreduce = 0
        self.bytes_all_to_all = 0
        self.bytes_allgather = 0
        self.num_collectives = 0

    @property
    def total_bytes(self) -> int:
        return self.bytes_allreduce + self.bytes_all_to_all + self.bytes_allgather

    def reset_counters(self) -> None:
        self.bytes_allreduce = 0
        self.bytes_all_to_all = 0
        self.bytes_allgather = 0
        self.num_collectives = 0

    # ------------------------------------------------------------------ #

    def allreduce_mean(self, buffers: list[np.ndarray]) -> np.ndarray:
        """Average one array across workers; every worker gets the result.

        ``buffers`` holds worker ``i``'s contribution at position ``i``.
        """
        self._check(buffers)
        k = self.world_size
        size = buffers[0].nbytes
        if k > 1:
            self.bytes_allreduce += int(2 * size * (k - 1) / k) * k
        self.num_collectives += 1
        out = buffers[0].astype(np.float64, copy=True)
        for b in buffers[1:]:
            out += b
        out /= k
        return out

    def allreduce_sum(self, buffers: list[np.ndarray]) -> np.ndarray:
        """Sum one array across workers; every worker gets the result.

        Used where each worker holds a *partial* contribution to a global
        quantity (e.g. MLP gradients of a loss whose 1/B normalisation was
        already applied globally) — contrast with :meth:`allreduce_mean`
        for shard-local means.
        """
        self._check(buffers)
        k = self.world_size
        size = buffers[0].nbytes
        if k > 1:
            self.bytes_allreduce += int(2 * size * (k - 1) / k) * k
        self.num_collectives += 1
        out = buffers[0].astype(np.float64, copy=True)
        for b in buffers[1:]:
            out += b
        return out

    def allgather(self, buffers: list[np.ndarray]) -> list[np.ndarray]:
        """Every worker receives every worker's array (returned as a list)."""
        self._check(buffers)
        k = self.world_size
        if k > 1:
            self.bytes_allgather += sum(int(b.nbytes) * (k - 1) for b in buffers)
        self.num_collectives += 1
        return [b.copy() for b in buffers]

    def all_to_all(self, chunks: list[list[np.ndarray]]) -> list[list[np.ndarray]]:
        """Transpose a K x K grid of arrays: worker ``i``'s ``chunks[i][j]``
        is delivered to worker ``j`` as ``result[j][i]``.

        Only off-diagonal chunks (actual remote traffic) are billed.
        """
        k = self.world_size
        if len(chunks) != k or any(len(row) != k for row in chunks):
            raise ValueError(f"expected a {k}x{k} grid of chunks")
        for i in range(k):
            for j in range(k):
                if i != j:
                    self.bytes_all_to_all += int(chunks[i][j].nbytes)
        self.num_collectives += 1
        return [[chunks[i][j].copy() for i in range(k)] for j in range(k)]

    # ------------------------------------------------------------------ #

    def _check(self, buffers: list[np.ndarray]) -> None:
        if len(buffers) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} buffers, got {len(buffers)}"
            )
        shape = buffers[0].shape
        for i, b in enumerate(buffers[1:], start=1):
            if b.shape != shape:
                raise ValueError(
                    f"buffer {i} has shape {b.shape}, expected {shape}"
                )
