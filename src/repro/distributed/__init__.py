"""Simulated distributed training (the §5 systems context, made executable).

The paper contrasts two ways to train DLRMs on multiple accelerators:

- **model parallelism** for the dense baseline — embedding tables sharded
  across workers because no single device fits them, with an all-to-all
  exchange of pooled embedding vectors every iteration;
- **data parallelism** for TT-Rec — the compressed model fits everywhere,
  so only a gradient allreduce is needed.

This package *simulates* both in-process: ``Communicator`` provides
byte-accounted collectives (allreduce / all-to-all), ``DataParallelTrainer``
runs K synchronized replicas, and ``ShardedEmbeddingDLRM`` runs the
table-sharded layout with the all-to-all redistribution DLRM systems use.
Everything is exact (no network, no nondeterminism): data-parallel
training is verified bit-equivalent to single-worker large-batch training,
and the byte counters are verified against the analytic model of
:mod:`repro.analysis.parallelism`.

:mod:`repro.distributed.elastic` adds the fault-tolerant runtime on top:
``ElasticTrainer`` supervises ``TrainerWorker`` state machines through
heartbeat detection, breaker-gated eviction, degraded collectives over
survivors, and live shard-delta recovery of lost replicas.
"""

from repro.distributed.collectives import CollectiveError, Communicator
from repro.distributed.data_parallel import (DataParallelTrainer, shard_batch,
                                             shard_batch_counts)
from repro.distributed.elastic import (ElasticConfig, ElasticError,
                                       ElasticTrainer, TrainerWorker,
                                       WorkerKillSpec, parse_worker_kill_spec,
                                       reconcile_elastic)
from repro.distributed.model_parallel import (ShardedEmbeddingDLRM,
                                              partition_parameters)

__all__ = ["Communicator", "CollectiveError", "DataParallelTrainer",
           "ShardedEmbeddingDLRM", "ElasticTrainer", "TrainerWorker",
           "ElasticConfig", "ElasticError", "WorkerKillSpec",
           "parse_worker_kill_spec", "reconcile_elastic", "shard_batch",
           "shard_batch_counts", "partition_parameters"]
