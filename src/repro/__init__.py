"""TT-Rec reproduction: Tensor-Train compression for DLRM embeddings.

Reproduction of Yin, Acun, Liu & Wu, "TT-Rec: Tensor Train Compression for
Deep Learning Recommendation Model Embeddings", MLSys 2021 — implemented
from scratch in NumPy (TT kernels, DLRM, LFU cache, data substrate,
benchmark harness). See DESIGN.md for the system inventory and
EXPERIMENTS.md for paper-vs-measured results.

Quickstart::

    from repro import TTEmbeddingBag
    emb = TTEmbeddingBag(num_rows=1_000_000, dim=16, rank=32, rng=0)
    vectors = emb.lookup([3, 14, 15])           # (3, 16) rows
    print(emb.compression_ratio())              # hundreds x

    from repro import DLRMConfig, build_ttrec, TTConfig
    from repro.data import KAGGLE, SyntheticCTRDataset
    spec = KAGGLE.scaled(0.001)
    model = build_ttrec(DLRMConfig(table_sizes=spec.table_sizes),
                        num_tt_tables=7, tt=TTConfig(rank=32), min_rows=500)
"""

from repro.baselines import (
    HashedEmbeddingBag,
    LowRankEmbeddingBag,
    QuantizedEmbeddingBag,
    TREmbeddingBag,
)
from repro.cache import CachedTTEmbeddingBag, LFUTracker, OpenAddressingHashTable
from repro.models import (
    DLRM,
    DLRMConfig,
    TTConfig,
    build_dlrm,
    build_ttrec,
    load_model,
    save_model,
)
from repro.ops import SGD, Adagrad, EmbeddingBag, SparseSGD
from repro.reliability import (
    CheckpointManager,
    DivergenceGuard,
    FaultInjector,
    FaultSpec,
    GuardPolicy,
)
from repro.telemetry import (
    MetricsRegistry,
    disable_tracing,
    enable_tracing,
    get_registry,
    get_tracer,
    trace,
)
from repro.training import EvalResult, LRScheduler, Trainer, TrainResult
from repro.tt import (
    T3nsorEmbeddingBag,
    TTEmbeddingBag,
    TTShape,
    tt_reconstruct,
    tt_svd,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # TT core
    "TTShape",
    "TTEmbeddingBag",
    "T3nsorEmbeddingBag",
    "tt_svd",
    "tt_reconstruct",
    # baseline ops
    "EmbeddingBag",
    "SGD",
    "SparseSGD",
    "Adagrad",
    # cache
    "CachedTTEmbeddingBag",
    "LFUTracker",
    "OpenAddressingHashTable",
    # model
    "DLRM",
    "DLRMConfig",
    "TTConfig",
    "build_dlrm",
    "build_ttrec",
    # training
    "Trainer",
    "TrainResult",
    "EvalResult",
    "LRScheduler",
    # checkpointing
    "save_model",
    "load_model",
    # telemetry (metrics registry, tracing spans, JSONL events)
    "MetricsRegistry",
    "get_registry",
    "trace",
    "get_tracer",
    "enable_tracing",
    "disable_tracing",
    # reliability (fault injection, checkpoint/resume, divergence guard)
    "FaultInjector",
    "FaultSpec",
    "CheckpointManager",
    "DivergenceGuard",
    "GuardPolicy",
    # compression baselines (related work)
    "HashedEmbeddingBag",
    "LowRankEmbeddingBag",
    "QuantizedEmbeddingBag",
    "TREmbeddingBag",
]
