"""Declarative SLOs evaluated as multi-window burn rates with exemplars.

An *objective* says what fraction of requests must be good (``target``,
e.g. 0.99) and how each request is classified good/bad (``metric``).
The engine evaluates each objective over several sliding windows at
once — the classic multi-window burn-rate alert: a violation fires only
when **every** window's burn rate exceeds its threshold, so a short
blip trips the fast window but not the slow one (no alert), while a
sustained problem trips both. Burn rate is measured in budget units::

    burn = bad_fraction / (1 - target)

so burn 1.0 consumes the error budget exactly at the allowed pace, and
``max_burn`` of, say, 10 on a short window means "burning budget 10x
too fast right now".

Every bad observation records an exemplar — the request's trace id when
request tracing sampled it — so a fired violation links directly to
``repro trace`` output for the requests that burned the budget.

Supported metrics:

``availability``
    served = good, shed/rejected = bad.
``latency``
    served under ``threshold_ms`` = good, over = bad (shed ignored —
    availability owns those).
``degraded``
    served at full fidelity = good, served degraded (replica or prior
    row after failover) = bad.
``staleness``
    replica consistency: each clean replica check = good, each
    stale/violating row = bad.

Objectives carry ``gate: true|false`` — the serve-bench exit code only
considers gated objectives, so a policy can include tight informational
objectives (to demonstrate violations + exemplars in a chaos drill)
without failing CI.

Policy document (``repro.slo/v1``) and report (``repro.slo-report/v1``)
are both plain JSON; see ``benchmarks/slo_serving.json`` and
docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import json
import os
from collections import deque

__all__ = [
    "SLO_SCHEMA",
    "REPORT_SCHEMA",
    "Objective",
    "SLOEngine",
    "load_policy",
    "format_report",
]

SLO_SCHEMA = "repro.slo/v1"
REPORT_SCHEMA = "repro.slo-report/v1"

_METRICS = ("availability", "latency", "degraded", "staleness")
_MAX_EXEMPLARS = 5


class Objective:
    """One parsed objective: classification rule + burn-rate windows."""

    __slots__ = ("name", "metric", "target", "threshold_ms", "gate",
                 "windows")

    def __init__(self, name: str, metric: str, target: float,
                 windows: list[dict], *, threshold_ms: float | None = None,
                 gate: bool = True):
        if metric not in _METRICS:
            raise ValueError(
                f"objective {name!r}: unknown metric {metric!r} "
                f"(expected one of {_METRICS})"
            )
        if not 0.0 < target < 1.0:
            raise ValueError(
                f"objective {name!r}: target must be in (0, 1), got {target}"
            )
        if metric == "latency" and threshold_ms is None:
            raise ValueError(
                f"objective {name!r}: latency objectives need threshold_ms"
            )
        if not windows:
            raise ValueError(f"objective {name!r}: needs at least one window")
        for w in windows:
            if w.get("ms", 0) <= 0 or w.get("max_burn", 0) <= 0:
                raise ValueError(
                    f"objective {name!r}: windows need positive ms and "
                    f"max_burn, got {w}"
                )
        self.name = name
        self.metric = metric
        self.target = float(target)
        self.threshold_ms = (
            float(threshold_ms) if threshold_ms is not None else None
        )
        self.gate = bool(gate)
        self.windows = [
            {"ms": float(w["ms"]), "max_burn": float(w["max_burn"])}
            for w in windows
        ]

    @property
    def budget(self) -> float:
        return 1.0 - self.target

    def classify(self, kind: str, *, latency_ms=None,
                 degraded=False) -> str | None:
        """``"good"``, ``"bad"``, or ``None`` (not this objective's
        traffic) for one observation."""
        if self.metric == "availability":
            if kind == "served":
                return "good"
            if kind in ("shed", "rejected"):
                return "bad"
        elif self.metric == "latency":
            if kind == "served":
                over = latency_ms is not None and latency_ms > self.threshold_ms
                return "bad" if over else "good"
        elif self.metric == "degraded":
            if kind == "served":
                return "bad" if degraded else "good"
        elif self.metric == "staleness":
            if kind == "replica_check":
                return "good"
            if kind == "staleness":
                return "bad"
        return None

    def as_dict(self) -> dict:
        out = {
            "name": self.name,
            "metric": self.metric,
            "target": self.target,
            "gate": self.gate,
            "windows": [dict(w) for w in self.windows],
        }
        if self.threshold_ms is not None:
            out["threshold_ms"] = self.threshold_ms
        return out


def load_policy(source: str | os.PathLike | dict) -> list[Objective]:
    """Parse a ``repro.slo/v1`` policy (path or already-loaded dict)."""
    if isinstance(source, dict):
        doc = source
    else:
        with open(source) as fh:
            doc = json.load(fh)
    if doc.get("schema") != SLO_SCHEMA:
        raise ValueError(f"unknown SLO policy schema: {doc.get('schema')!r}")
    objectives = doc.get("objectives")
    if not isinstance(objectives, list) or not objectives:
        raise ValueError("SLO policy needs a non-empty 'objectives' list")
    parsed = []
    seen = set()
    for obj in objectives:
        name = obj.get("name")
        if not isinstance(name, str) or not name:
            raise ValueError(f"objective needs a string name, got {obj!r}")
        if name in seen:
            raise ValueError(f"duplicate objective name {name!r}")
        seen.add(name)
        parsed.append(Objective(
            name, obj.get("metric", ""), obj.get("target", 0.0),
            obj.get("windows", []),
            threshold_ms=obj.get("threshold_ms"),
            gate=obj.get("gate", True),
        ))
    return parsed


def _merge_exemplar(exemplars: list[str], exemplar: str) -> None:
    """Add ``exemplar`` to an episode's bounded exemplar list.

    Real trace ids beat ``req:<id>`` fallbacks: once the list is full a
    trace id replaces the first fallback entry, so a violation episode
    that overlaps any sampled request ends up resolvable by
    ``repro trace --trace-id``.
    """
    if exemplar in exemplars:
        return
    if len(exemplars) < _MAX_EXEMPLARS:
        exemplars.append(exemplar)
        return
    if not exemplar.startswith("req:"):
        for i, existing in enumerate(exemplars):
            if existing.startswith("req:"):
                exemplars[i] = exemplar
                return


class _ObjectiveState:
    """Sliding observation log + open/closed violation episodes."""

    __slots__ = ("objective", "log", "good", "bad", "exemplars",
                 "episodes", "open_episode", "evaluations")

    def __init__(self, objective: Objective):
        self.objective = objective
        # (now_ms, good_n, bad_n) samples, pruned to the longest window.
        self.log: deque[tuple[float, int, int]] = deque()
        self.good = 0
        self.bad = 0
        self.exemplars: deque[str] = deque(maxlen=_MAX_EXEMPLARS)
        self.episodes: list[dict] = []
        self.open_episode: dict | None = None
        self.evaluations = 0

    @property
    def max_window_ms(self) -> float:
        return max(w["ms"] for w in self.objective.windows)

    def add(self, now: float, verdict: str, exemplar: str | None,
            count: int) -> None:
        good_n = count if verdict == "good" else 0
        bad_n = count if verdict == "bad" else 0
        self.good += good_n
        self.bad += bad_n
        if bad_n and exemplar:
            self.exemplars.append(exemplar)
            if self.open_episode is not None:
                _merge_exemplar(
                    self.open_episode["exemplar_trace_ids"], exemplar
                )
        self.log.append((now, good_n, bad_n))
        horizon = now - self.max_window_ms
        while self.log and self.log[0][0] < horizon:
            self.log.popleft()

    def window_burns(self, now: float) -> list[dict]:
        """Burn rate per configured window at time ``now``."""
        out = []
        for w in self.objective.windows:
            start = now - w["ms"]
            good_n = bad_n = 0
            for ts, g, b in self.log:
                if ts >= start:
                    good_n += g
                    bad_n += b
            total = good_n + bad_n
            bad_frac = bad_n / total if total else 0.0
            out.append({
                "ms": w["ms"],
                "max_burn": w["max_burn"],
                "good": good_n,
                "bad": bad_n,
                "burn": bad_frac / self.objective.budget,
            })
        return out

    def evaluate(self, now: float, min_count: int) -> None:
        """Open/close violation episodes from the current window burns."""
        self.evaluations += 1
        burns = self.window_burns(now)
        violated = all(
            (b["good"] + b["bad"]) >= min_count and b["burn"] > b["max_burn"]
            for b in burns
        )
        if violated and self.open_episode is None:
            self.open_episode = {
                "objective": self.objective.name,
                "start_ms": now,
                "end_ms": None,
                "burns_at_open": burns,
                "exemplar_trace_ids": list(self.exemplars),
            }
        elif not violated and self.open_episode is not None:
            self.open_episode["end_ms"] = now
            self.episodes.append(self.open_episode)
            self.open_episode = None


class SLOEngine:
    """Streaming evaluator: feed observations, read verdicts.

    Timestamps come from the run's ManualClock (simulated ms), so two
    same-seed runs produce identical reports. ``min_count`` guards the
    short windows against firing on the first handful of requests.
    """

    def __init__(self, objectives: list[Objective], *, min_count: int = 20):
        self.objectives = objectives
        self.min_count = min_count
        self._states = {o.name: _ObjectiveState(o) for o in objectives}
        self.observations = 0

    # ------------------------------------------------------------------ #

    def observe(self, kind: str, *, now: float, latency_ms=None,
                degraded: bool = False, trace_id: str | None = None,
                request_id=None, count: int = 1) -> None:
        """Feed one observation to every objective it classifies under.

        ``kind``: ``served`` / ``shed`` / ``rejected`` / ``staleness`` /
        ``replica_check``. The exemplar is the trace id when tracing
        sampled the request, else a ``req:<id>`` fallback.
        """
        if count <= 0:
            return
        self.observations += count
        exemplar = trace_id or (
            f"req:{request_id}" if request_id is not None else None
        )
        for state in self._states.values():
            verdict = state.objective.classify(
                kind, latency_ms=latency_ms, degraded=degraded
            )
            if verdict is None:
                continue
            state.add(float(now), verdict, exemplar, count)
            state.evaluate(float(now), self.min_count)

    # ------------------------------------------------------------------ #

    def report(self, now: float) -> dict:
        """``repro.slo-report/v1`` document: verdict per objective.

        Closes any still-open episodes at ``now`` (they stay recorded as
        violations) and reports ``compliant`` per objective (no episodes
        at all) plus the roll-ups ``compliant`` (all objectives) and
        ``gate_passed`` (gated objectives only — the exit-code signal).
        """
        objectives = []
        for state in self._states.values():
            state.evaluate(float(now), self.min_count)
            if state.open_episode is not None:
                state.open_episode["end_ms"] = float(now)
                state.episodes.append(state.open_episode)
                state.open_episode = None
            total = state.good + state.bad
            objectives.append({
                "objective": state.objective.as_dict(),
                "good": state.good,
                "bad": state.bad,
                "bad_fraction": state.bad / total if total else 0.0,
                "windows": state.window_burns(float(now)),
                "episodes": state.episodes,
                "compliant": not state.episodes,
            })
        return {
            "schema": REPORT_SCHEMA,
            "at_ms": float(now),
            "min_count": self.min_count,
            "observations": self.observations,
            "objectives": objectives,
            "compliant": all(o["compliant"] for o in objectives),
            "gate_passed": all(
                o["compliant"] for o in objectives
                if o["objective"]["gate"]
            ),
        }


def format_report(report: dict) -> str:
    """Human-readable rendering of a ``repro.slo-report/v1`` document."""
    if report.get("schema") != REPORT_SCHEMA:
        raise ValueError(f"unknown SLO report schema: {report.get('schema')!r}")
    lines = [
        f"SLO report @ {report['at_ms']:.1f} ms  "
        f"({report['observations']} observations)"
    ]
    for entry in report["objectives"]:
        obj = entry["objective"]
        status = "OK " if entry["compliant"] else "VIOLATED"
        gate = "gate" if obj["gate"] else "info"
        thr = (f" <{obj['threshold_ms']:g}ms"
               if obj.get("threshold_ms") is not None else "")
        lines.append(
            f"  [{status}] {obj['name']} ({obj['metric']}{thr}, "
            f"target {obj['target']:.4g}, {gate}): "
            f"good={entry['good']} bad={entry['bad']} "
            f"bad_frac={entry['bad_fraction']:.4f}"
        )
        for w in entry["windows"]:
            lines.append(
                f"      window {w['ms']:g}ms: burn {w['burn']:.2f} "
                f"(max {w['max_burn']:g}, n={w['good'] + w['bad']})"
            )
        for ep in entry["episodes"]:
            ex = ", ".join(ep["exemplar_trace_ids"]) or "none"
            lines.append(
                f"      episode {ep['start_ms']:.1f}–{ep['end_ms']:.1f} ms, "
                f"exemplars: {ex}"
            )
    lines.append(
        f"  overall: compliant={report['compliant']} "
        f"gate_passed={report['gate_passed']}"
    )
    return "\n".join(lines)
