"""Process-wide metrics registry: counters, gauges and histograms.

Every instrumented component (TT kernels, the LFU cache, the collective
simulator, the trainer) registers its instruments here instead of keeping
private counter attributes, so one ``repro profile`` run — or one
``--emit-json`` snapshot — sees the whole system through a single
registry. Instruments are identified by a metric *name* plus a set of
string *labels* (``cache.hits{module=emb0#2}``), mirroring the
Prometheus data model without the wire format.

Instruments are plain objects with ``__slots__`` and integer/float
fields; incrementing a counter is one attribute add, cheap enough to
leave permanently enabled on hot paths (the tracer, not the registry,
carries the disable switch — see :mod:`repro.telemetry.tracer`).
"""

from __future__ import annotations

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "metric_key",
]

# Geometric decades covering sub-microsecond to multi-second durations in
# nanoseconds — the default bucketing for span-duration histograms.
DEFAULT_BUCKET_BOUNDS = (
    1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000
)


def metric_key(name: str, labels: dict[str, str] | None = None) -> str:
    """Canonical string key, e.g. ``cache.hits{module=emb0}``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonic-by-convention integer counter (``set`` exists for
    checkpoint restore, which must re-seed cumulative statistics)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def set(self, value: int) -> None:
        self.value = int(value)

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """Last-value-wins instantaneous measurement."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def reset(self) -> None:
        self.value = 0.0


class Histogram:
    """Streaming distribution summary: count/total/min/max plus
    cumulative-style bucket counts over fixed upper bounds."""

    __slots__ = ("count", "total", "min", "max", "bounds", "bucket_counts")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKET_BOUNDS):
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must be sorted, got {bounds}")
        self.bounds = tuple(bounds)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        # bucket_counts[i] counts observations <= bounds[i]; the final
        # slot is the +inf overflow bucket.
        self.bucket_counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) of the stream.

        Walks the cumulative bucket counts to the bucket containing the
        target rank, then **interpolates linearly within that bucket**
        (assuming observations are uniform inside it) instead of
        snapping to the bucket's upper edge — the naive estimate that
        biases p99 upward by up to a full bucket width. The interpolated
        estimate is additionally clamped to the observed ``[min, max]``,
        so the error bound is::

            |quantile(q) - exact| <= width of the containing bucket
                                     (tight: 0 when the bucket holds a
                                      single distinct value, and the
                                      q=0 / q=1 ends are exact)

        where the first bucket's lower edge is the observed minimum and
        the overflow bucket's upper edge is the observed maximum.
        Returns 0.0 on an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cum = 0
        lo = self.min
        edges = [*self.bounds, self.max]
        for i, hi in enumerate(edges):
            n = self.bucket_counts[i]
            if n and cum + n >= target:
                lo_edge = max(lo, self.min)
                hi_edge = max(min(hi, self.max), lo_edge)
                frac = (target - cum) / n
                est = lo_edge + frac * (hi_edge - lo_edge)
                return min(max(est, self.min), self.max)
            cum += n
            lo = hi
        return self.max  # pragma: no cover - ranks always land in a bucket

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.bucket_counts = [0] * (len(self.bounds) + 1)

    def summary(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": dict(zip([*map(str, self.bounds), "+inf"],
                                self.bucket_counts)),
        }


class MetricsRegistry:
    """Get-or-create store of labelled instruments.

    ``counter``/``gauge``/``histogram`` return the *same* object for the
    same ``(name, labels)`` pair, so components hold direct references to
    their instruments and pay no lookup on the hot path.
    """

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------ #

    def counter(self, name: str, **labels: str) -> Counter:
        key = metric_key(name, labels)
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter()
        return inst

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = metric_key(name, labels)
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge()
        return inst

    def histogram(self, name: str, *, bounds: tuple[float, ...] | None = None,
                  **labels: str) -> Histogram:
        key = metric_key(name, labels)
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram(
                bounds if bounds is not None else DEFAULT_BUCKET_BOUNDS
            )
        return inst

    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """JSON-ready copy of every instrument's current value."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {k: h.summary()
                           for k, h in sorted(self._histograms.items())},
        }

    def reset(self, prefix: str | None = None) -> None:
        """Zero every instrument (optionally only those whose key starts
        with ``prefix``); instruments stay registered."""
        for store in (self._counters, self._gauges, self._histograms):
            for key, inst in store.items():
                if prefix is None or key.startswith(prefix):
                    inst.reset()

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry all components share."""
    return _REGISTRY
