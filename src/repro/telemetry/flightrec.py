"""Flight recorder: bounded rings of recent telemetry, dumped on trouble.

Always-on full tracing is too expensive for chaos runs, but by the time
a breaker opens or a shard is marked down the interesting history has
already happened. The flight recorder keeps small bounded rings of the
most recent events and sampled traces plus a baseline counter snapshot,
and on a *trigger* event — breaker-open, shard mark-down, failover,
training-worker mark-down, sanitizer trip — dumps everything to
``flightrec-<label>.json``
(schema ``repro.flightrec/v1``), so post-hoc debugging starts from the
moments *before* the incident, not after it.

Determinism: dumps contain no wall-clock timestamps — event records
carry a monotonically-increasing ``seq`` and the dump's ``at_ms`` comes
from the run's ManualClock, so two same-seed chaos runs produce
byte-identical dump files. Only the first occurrence of each trigger
label is dumped (later ones are counted as ``suppressed``), keeping the
artifact set bounded no matter how long the incident lasts.

Wiring: :func:`install_flight_recorder` registers the recorder with
:mod:`repro.telemetry.events` so every ``emit_event``/``traced_event``
feeds the ring automatically; the request tracer hands finished sampled
traces to :meth:`FlightRecorder.record_trace`.
"""

from __future__ import annotations

import json
import os
from collections import deque

from repro.telemetry.events import _json_safe, set_event_recorder
from repro.telemetry.registry import get_registry

__all__ = [
    "FLIGHT_SCHEMA",
    "FlightRecorder",
    "install_flight_recorder",
    "uninstall_flight_recorder",
    "get_flight_recorder",
    "read_dump",
]

FLIGHT_SCHEMA = "repro.flightrec/v1"

# Event type (+ predicate on its data) -> dump label. A trigger firing
# dumps the rings once per label; see FlightRecorder._maybe_dump.
_TRIGGERS: tuple[tuple[str, str, object], ...] = (
    ("serving.breaker", "breaker-open",
     lambda data: data.get("to_state") == "open"),
    ("shard.marked_down", "shard-down", None),
    ("shard.failover", "failover", None),
    ("dist.worker.marked_down", "worker-down", None),
    ("sanitizer.trip", "sanitizer-trip", None),
)


class FlightRecorder:
    """Bounded history of events + traces with trigger-driven dumps."""

    def __init__(self, directory: str | os.PathLike, *, clock=None,
                 event_ring: int = 256, trace_ring: int = 16,
                 max_dumps: int = 16):
        self.directory = os.fspath(directory)
        self._clock = clock
        self._events: deque[dict] = deque(maxlen=event_ring)
        self._traces: deque[dict] = deque(maxlen=trace_ring)
        self._seq = 0
        self._dumped: dict[str, str] = {}      # label -> dump path
        self._suppressed: dict[str, int] = {}  # label -> later triggers
        self._max_dumps = max_dumps
        # Counter baseline: dumps report deltas since recorder install,
        # which is what "what changed during the incident window" needs.
        self._baseline = dict(get_registry().snapshot()["counters"])

    # ------------------------------------------------------------------ #

    def _now(self) -> float:
        clock = self._clock
        return float(clock()) if clock is not None else 0.0

    def record_event(self, etype: str, data: dict) -> None:
        """Ring-buffer an event; dump if it matches a trigger."""
        self._seq += 1
        self._events.append(
            {"seq": self._seq, "type": etype, "data": _json_safe(data)}
        )
        for trig_type, label, pred in _TRIGGERS:
            if etype == trig_type and (pred is None or pred(data)):
                self._maybe_dump(label)

    def record_trace(self, trace_id: str, spans: list[dict]) -> None:
        """Ring-buffer a finished sampled trace (most recent N kept)."""
        self._traces.append({"trace_id": trace_id, "spans": list(spans)})

    # ------------------------------------------------------------------ #

    def _counter_delta(self) -> dict:
        now = get_registry().snapshot()["counters"]
        delta = {}
        for key, value in now.items():
            diff = value - self._baseline.get(key, 0)
            if diff:
                delta[key] = diff
        return delta

    def _maybe_dump(self, label: str) -> str | None:
        if label in self._dumped:
            self._suppressed[label] = self._suppressed.get(label, 0) + 1
            return None
        if len(self._dumped) >= self._max_dumps:
            self._suppressed[label] = self._suppressed.get(label, 0) + 1
            return None
        os.makedirs(self.directory, exist_ok=True)
        path = os.path.join(self.directory, f"flightrec-{label}.json")
        doc = {
            "schema": FLIGHT_SCHEMA,
            "trigger": label,
            "at_ms": self._now(),
            "events": list(self._events),
            "traces": list(self._traces),
            "counters_delta": self._counter_delta(),
        }
        with open(path, "w") as fh:
            json.dump(doc, fh, sort_keys=True, indent=2)
            fh.write("\n")
        self._dumped[label] = path
        return path

    def summary(self) -> dict:
        """What the recorder saw and dumped, for the serve-bench report."""
        return {
            "events_seen": self._seq,
            "dumps": dict(sorted(self._dumped.items())),
            "suppressed": dict(sorted(self._suppressed.items())),
        }


def read_dump(path: str | os.PathLike) -> dict:
    """Load and validate one ``flightrec-*.json`` dump.

    Post-hoc tooling goes through here rather than raw ``json.load`` so
    a dump from a different contract generation fails loudly instead of
    mis-parsing.
    """
    with open(path) as fh:
        doc = json.load(fh)
    schema = doc.get("schema")
    if schema != FLIGHT_SCHEMA:
        raise ValueError(
            f"{os.fspath(path)}: expected schema {FLIGHT_SCHEMA}, "
            f"got {schema!r}"
        )
    for field in ("trigger", "at_ms", "events", "traces", "counters_delta"):
        if field not in doc:
            raise ValueError(f"{os.fspath(path)}: missing field {field!r}")
    return doc


_RECORDER: FlightRecorder | None = None


def install_flight_recorder(recorder: FlightRecorder) -> FlightRecorder:
    """Make ``recorder`` the process-wide sink for events and traces."""
    global _RECORDER
    _RECORDER = recorder
    set_event_recorder(recorder)
    return recorder


def uninstall_flight_recorder() -> None:
    global _RECORDER
    _RECORDER = None
    set_event_recorder(None)


def get_flight_recorder() -> FlightRecorder | None:
    return _RECORDER
