"""Unified telemetry layer: metrics registry, span tracer, JSONL events.

Three cooperating pieces, all process-wide singletons so every component
reports into one place (docs/OBSERVABILITY.md has the full conventions):

- :mod:`repro.telemetry.registry` — labelled counters/gauges/histograms
  (``get_registry()``), always on, backing ``stats()`` methods and the
  byte/hit/fault counters across the cache, collectives and reliability
  runtime;
- :mod:`repro.telemetry.tracer` — nested timing spans
  (``with trace("tt.forward.gemm", core=k):``), off by default with a
  near-zero-cost no-op path, aggregated into a span tree that
  ``repro profile`` prints;
- :mod:`repro.telemetry.events` — a structured JSONL sink for discrete
  events (fault firings, guard actions, cache refreshes) plus the
  ``--emit-json`` snapshot document combining registry + span tree.
"""

from repro.telemetry.events import (
    EVENT_SCHEMA,
    SNAPSHOT_SCHEMA,
    JsonlSink,
    emit_event,
    get_sink,
    install_sink,
    read_events,
    snapshot,
    uninstall_sink,
    validate_event,
    validate_snapshot,
    write_snapshot,
)
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    metric_key,
)
from repro.telemetry.tracer import (
    SpanNode,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    trace,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "metric_key",
    "SpanNode",
    "Tracer",
    "trace",
    "get_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "EVENT_SCHEMA",
    "SNAPSHOT_SCHEMA",
    "JsonlSink",
    "install_sink",
    "uninstall_sink",
    "get_sink",
    "emit_event",
    "read_events",
    "validate_event",
    "snapshot",
    "write_snapshot",
    "validate_snapshot",
]
