"""Unified telemetry layer: metrics registry, span tracer, JSONL events.

Three cooperating pieces, all process-wide singletons so every component
reports into one place (docs/OBSERVABILITY.md has the full conventions):

- :mod:`repro.telemetry.registry` — labelled counters/gauges/histograms
  (``get_registry()``), always on, backing ``stats()`` methods and the
  byte/hit/fault counters across the cache, collectives and reliability
  runtime;
- :mod:`repro.telemetry.tracer` — nested timing spans
  (``with trace("tt.forward.gemm", core=k):``), off by default with a
  near-zero-cost no-op path, aggregated into a span tree that
  ``repro profile`` prints;
- :mod:`repro.telemetry.events` — a structured JSONL sink for discrete
  events (fault firings, guard actions, cache refreshes) plus the
  ``--emit-json`` snapshot document combining registry + span tree.

PR 7 adds the cross-boundary plane on top (three layers total —
metrics → traces → SLOs/flight recorder):

- :mod:`repro.telemetry.tracing` — deterministic per-request distributed
  traces (``repro.trace/v1`` JSONL) propagated router→shard→ladder→
  kernel via ``traced_span``/``traced_event``;
- :mod:`repro.telemetry.slo` — declarative objectives evaluated as
  multi-window burn rates with exemplar trace ids;
- :mod:`repro.telemetry.flightrec` — bounded rings of recent events and
  traces, auto-dumped on breaker-open / shard mark-down / failover /
  sanitizer trips.
"""

from repro.telemetry.events import (
    EVENT_SCHEMA,
    SNAPSHOT_SCHEMA,
    JsonlSink,
    emit_event,
    get_sink,
    install_sink,
    read_events,
    snapshot,
    uninstall_sink,
    validate_event,
    validate_snapshot,
    write_snapshot,
)
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    metric_key,
)
from repro.telemetry.flightrec import (
    FLIGHT_SCHEMA,
    FlightRecorder,
    get_flight_recorder,
    install_flight_recorder,
    uninstall_flight_recorder,
)
from repro.telemetry.slo import (
    REPORT_SCHEMA,
    SLO_SCHEMA,
    Objective,
    SLOEngine,
    format_report,
    load_policy,
)
from repro.telemetry.tracer import (
    SpanNode,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    trace,
    tracing_enabled,
)
from repro.telemetry.tracing import (
    TRACE_SCHEMA,
    RequestTracer,
    TraceContext,
    annotate_span,
    critical_path,
    finish_request,
    format_trace_tree,
    get_request_tracer,
    read_trace,
    slowest_traces,
    trace_duration_ms,
    traced_event,
    traced_span,
    validate_trace_record,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "metric_key",
    "SpanNode",
    "Tracer",
    "trace",
    "get_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "EVENT_SCHEMA",
    "SNAPSHOT_SCHEMA",
    "JsonlSink",
    "install_sink",
    "uninstall_sink",
    "get_sink",
    "emit_event",
    "read_events",
    "validate_event",
    "snapshot",
    "write_snapshot",
    "validate_snapshot",
    "TRACE_SCHEMA",
    "TraceContext",
    "RequestTracer",
    "get_request_tracer",
    "traced_span",
    "traced_event",
    "annotate_span",
    "finish_request",
    "read_trace",
    "validate_trace_record",
    "trace_duration_ms",
    "critical_path",
    "slowest_traces",
    "format_trace_tree",
    "SLO_SCHEMA",
    "REPORT_SCHEMA",
    "Objective",
    "SLOEngine",
    "load_policy",
    "format_report",
    "FLIGHT_SCHEMA",
    "FlightRecorder",
    "install_flight_recorder",
    "uninstall_flight_recorder",
    "get_flight_recorder",
]
