"""Structured JSONL event sink shared by telemetry and reliability.

One process-wide sink (installed with :func:`install_sink`) receives
discrete events — fault firings, guard actions, cache refreshes,
checkpoint saves — as one JSON object per line. Components emit through
:func:`emit_event`, which is a cheap no-op while no sink is installed, so
the reliability runtime can emit unconditionally.

Event schema (``repro.telemetry.event/v1``)::

    {"schema": "repro.telemetry.event/v1",
     "seq": 3,                # per-sink monotonic sequence number
     "ts_ns": 123456789,      # perf_counter_ns at emit time (monotonic)
     "type": "guard.skip",    # dotted event type
     "data": {...}}           # event-specific JSON-safe payload

Snapshot schema (``repro.telemetry/v1``) — the single-document form the
CLI's ``--emit-json`` writes — bundles a metrics-registry snapshot and a
span tree; see :func:`snapshot` / :func:`validate_snapshot` and
docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import json
import os
from time import perf_counter_ns

__all__ = [
    "EVENT_SCHEMA",
    "SNAPSHOT_SCHEMA",
    "JsonlSink",
    "install_sink",
    "uninstall_sink",
    "get_sink",
    "set_event_recorder",
    "get_event_recorder",
    "emit_event",
    "read_events",
    "validate_event",
    "snapshot",
    "write_snapshot",
    "validate_snapshot",
]

EVENT_SCHEMA = "repro.telemetry.event/v1"
SNAPSHOT_SCHEMA = "repro.telemetry/v1"


def _json_safe(value):
    """Coerce numpy scalars/arrays and other non-JSON types for the wire."""
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        try:
            return value.item()  # numpy scalar -> python scalar
        except (ValueError, AttributeError):
            pass
    if hasattr(value, "tolist"):
        return value.tolist()
    if isinstance(value, float):
        # NaN/inf are not valid strict JSON; ship them as strings.
        return value if value == value and abs(value) != float("inf") else repr(value)
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    return repr(value)


class JsonlSink:
    """Append-only JSONL writer with line-buffered flushing."""

    def __init__(self, path: str | os.PathLike):
        self.path = os.fspath(path)
        self._fh = open(self.path, "a")
        self._seq = 0

    def emit(self, etype: str, **data) -> dict:
        """Write one event line; returns the emitted record."""
        record = {
            "schema": EVENT_SCHEMA,
            "seq": self._seq,
            "ts_ns": perf_counter_ns(),
            "type": etype,
            "data": _json_safe(data),
        }
        self._seq += 1
        self._fh.write(json.dumps(record) + "\n")
        self._fh.flush()
        return record

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


_SINK: JsonlSink | None = None


def install_sink(sink: JsonlSink | str | os.PathLike) -> JsonlSink:
    """Install the process-wide sink (a path creates a :class:`JsonlSink`)."""
    global _SINK
    if not isinstance(sink, JsonlSink):
        sink = JsonlSink(sink)
    _SINK = sink
    return sink


def uninstall_sink() -> None:
    """Detach (and close) the process-wide sink."""
    global _SINK
    if _SINK is not None:
        _SINK.close()
    _SINK = None


def get_sink() -> JsonlSink | None:
    return _SINK


# Optional second consumer: the flight recorder's bounded event ring
# (repro.telemetry.flightrec). Decoupled from the sink so trigger-driven
# dumps work even when no JSONL sink is installed.
_RECORDER = None


def set_event_recorder(recorder) -> None:
    """Install (or with ``None`` remove) the flight-recorder event feed."""
    global _RECORDER
    _RECORDER = recorder


def get_event_recorder():
    return _RECORDER


def emit_event(etype: str, **data) -> None:
    """Emit to the installed sink; free when none is installed."""
    if _SINK is not None:
        _SINK.emit(etype, **data)
    if _RECORDER is not None:
        _RECORDER.record_event(etype, data)


# ---------------------------------------------------------------------- #
# Reading & validation
# ---------------------------------------------------------------------- #

def validate_event(record: dict) -> None:
    """Raise ``ValueError`` unless ``record`` matches the event schema."""
    if not isinstance(record, dict):
        raise ValueError(f"event must be an object, got {type(record).__name__}")
    if record.get("schema") != EVENT_SCHEMA:
        raise ValueError(f"unknown event schema: {record.get('schema')!r}")
    for key, typ in (("seq", int), ("ts_ns", int), ("type", str), ("data", dict)):
        if not isinstance(record.get(key), typ):
            raise ValueError(
                f"event field {key!r} must be {typ.__name__}, "
                f"got {record.get(key)!r}"
            )


def read_events(path: str | os.PathLike,
                event_type: str | None = None) -> list[dict]:
    """Parse and validate a JSONL event file (optionally one type only)."""
    events = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            validate_event(record)
            if event_type is None or record["type"] == event_type:
                events.append(record)
    return events


# ---------------------------------------------------------------------- #
# Whole-system snapshots (the --emit-json document)
# ---------------------------------------------------------------------- #

def snapshot(*, command: str | None = None, result: dict | None = None) -> dict:
    """One JSON document bundling the shared registry and span tree."""
    from repro.telemetry.registry import get_registry
    from repro.telemetry.tracer import get_tracer

    return {
        "schema": SNAPSHOT_SCHEMA,
        "command": command,
        "metrics": get_registry().snapshot(),
        "spans": get_tracer().tree_dict(),
        "result": _json_safe(result) if result is not None else {},
    }


def write_snapshot(path: str | os.PathLike, *, command: str | None = None,
                   result: dict | None = None) -> dict:
    """Write :func:`snapshot` to ``path``; returns the document."""
    doc = snapshot(command=command, result=result)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return doc


def validate_snapshot(doc: dict) -> None:
    """Raise ``ValueError`` unless ``doc`` matches the snapshot schema."""
    if not isinstance(doc, dict):
        raise ValueError(f"snapshot must be an object, got {type(doc).__name__}")
    if doc.get("schema") != SNAPSHOT_SCHEMA:
        raise ValueError(f"unknown snapshot schema: {doc.get('schema')!r}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        raise ValueError("snapshot 'metrics' must be an object")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), dict):
            raise ValueError(f"snapshot metrics.{section} must be an object")
    for key, value in metrics["counters"].items():
        if not isinstance(value, int):
            raise ValueError(f"counter {key!r} must be an int, got {value!r}")
    if not isinstance(doc.get("spans"), dict):
        raise ValueError("snapshot 'spans' must be an object")
    if not isinstance(doc.get("result"), dict):
        raise ValueError("snapshot 'result' must be an object")
