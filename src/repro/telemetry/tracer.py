"""Span-based tracing with nested aggregation and a no-op fast path.

Usage in instrumented code::

    from repro.telemetry import trace

    with trace("tt.forward.gemm", core=k):
        res = np.matmul(...)

Tracing is **off by default**. While disabled, ``trace()`` returns a
shared no-op context manager — the entire cost on a hot path is one
function call and one attribute check, which the telemetry overhead-guard
test bounds at <5% of a small training run. While enabled, each span
records ``perf_counter_ns`` durations into a tree of aggregates keyed by
the span's position under its parent, so repeated spans (one per batch,
one per TT core) fold into count/total/min/max statistics instead of an
unbounded event list.

Span naming convention: dotted component path plus optional bracketed
attributes, e.g. ``tt.forward.gemm[core=2]`` (see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

from time import perf_counter_ns

__all__ = [
    "SpanNode",
    "Tracer",
    "trace",
    "get_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "set_trace_hook",
]


class SpanNode:
    """Aggregated statistics for one span position in the tree."""

    __slots__ = ("name", "count", "total_ns", "min_ns", "max_ns", "children")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total_ns = 0
        self.min_ns: int | None = None
        self.max_ns = 0
        self.children: dict[str, SpanNode] = {}

    def record(self, elapsed_ns: int) -> None:
        self.count += 1
        self.total_ns += elapsed_ns
        if self.min_ns is None or elapsed_ns < self.min_ns:
            self.min_ns = elapsed_ns
        if elapsed_ns > self.max_ns:
            self.max_ns = elapsed_ns

    def child(self, name: str) -> "SpanNode":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = SpanNode(name)
        return node

    def as_dict(self) -> dict:
        """JSON-ready nested summary (times in nanoseconds)."""
        out = {
            "count": self.count,
            "total_ns": self.total_ns,
            "min_ns": self.min_ns,
            "max_ns": self.max_ns,
        }
        if self.children:
            out["children"] = {
                name: node.as_dict() for name, node in self.children.items()
            }
        return out


class _NoopSpan:
    """Shared do-nothing context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NOOP = _NoopSpan()


class _Span:
    __slots__ = ("tracer", "name", "start_ns")

    def __init__(self, tracer: "Tracer", name: str):
        self.tracer = tracer
        self.name = name

    def __enter__(self):
        tracer = self.tracer
        tracer._stack.append(tracer._stack[-1].child(self.name))
        self.start_ns = perf_counter_ns()
        return self

    def __exit__(self, *exc):
        elapsed = perf_counter_ns() - self.start_ns
        tracer = self.tracer
        tracer._stack.pop().record(elapsed)
        return False


def _span_name(name: str, attrs: dict) -> str:
    if not attrs:
        return name
    inner = ",".join(f"{k}={attrs[k]}" for k in sorted(attrs))
    return f"{name}[{inner}]"


class Tracer:
    """Owner of the span tree and the enabled flag.

    A tracer is single-threaded by design (the whole simulator is); the
    active-span stack is a plain list rooted at a synthetic node whose
    children are the top-level spans.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.root = SpanNode("<root>")
        self._stack: list[SpanNode] = [self.root]

    # ------------------------------------------------------------------ #

    def span(self, name: str, **attrs) -> _Span | _NoopSpan:
        if not self.enabled:
            return _NOOP
        return _Span(self, _span_name(name, attrs))

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded spans (keeps the enabled flag)."""
        self.root = SpanNode("<root>")
        self._stack = [self.root]

    @property
    def depth(self) -> int:
        """Nesting depth of the currently-open span (0 = no open span)."""
        return len(self._stack) - 1

    def total_spans(self) -> int:
        def walk(node: SpanNode) -> int:
            return node.count + sum(walk(c) for c in node.children.values())

        return walk(self.root)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def tree_dict(self) -> dict:
        """JSON-ready nested aggregate of every recorded span."""
        return {name: node.as_dict() for name, node in self.root.children.items()}

    def format_tree(self, *, min_total_ms: float = 0.0) -> str:
        """Human-readable indented span tree with per-node timing."""
        lines = [
            f"{'span':<46} {'count':>7} {'total ms':>10} {'mean us':>10}"
        ]
        lines.append("-" * len(lines[0]))

        def walk(node: SpanNode, depth: int) -> None:
            total_ms = node.total_ns / 1e6
            if total_ms < min_total_ms:
                return
            mean_us = node.total_ns / node.count / 1e3 if node.count else 0.0
            label = ("  " * depth) + node.name
            lines.append(
                f"{label:<46} {node.count:>7} {total_ms:>10.3f} {mean_us:>10.1f}"
            )
            for child in node.children.values():
                walk(child, depth + 1)

        for top in self.root.children.values():
            walk(top, 0)
        if len(lines) == 2:
            lines.append("(no spans recorded — is tracing enabled?)")
        return "\n".join(lines)


_TRACER = Tracer()

# Optional interception point for distributed request tracing: while a
# request-trace scope is active (repro.telemetry.tracing), every trace()
# call routes through the hook so legacy spans (tt.*, cache.*) land in
# the active request traces too. None whenever no scope is active, so
# the disabled fast path stays one extra global load + None check.
_HOOK = None


def set_trace_hook(hook) -> None:
    """Install (or with ``None`` remove) the global trace() interceptor."""
    global _HOOK
    _HOOK = hook


def get_tracer() -> Tracer:
    """The process-wide default tracer all components share."""
    return _TRACER


def trace(name: str, **attrs) -> _Span | _NoopSpan:
    """Open a span on the default tracer (no-op while tracing is off)."""
    if _HOOK is not None:
        return _HOOK(name, attrs)
    if not _TRACER.enabled:
        return _NOOP
    return _Span(_TRACER, _span_name(name, attrs))


def enable_tracing() -> None:
    _TRACER.enable()


def disable_tracing() -> None:
    _TRACER.disable()


def tracing_enabled() -> bool:
    return _TRACER.enabled
