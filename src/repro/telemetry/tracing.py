"""Deterministic distributed request tracing (``repro.trace/v1``).

PR-2's :mod:`~repro.telemetry.tracer` aggregates spans into a tree of
count/total statistics — it answers "where does time go on average" but
cannot explain one slow request. This module adds the per-request view:
a :class:`TraceContext` started at admission follows the request through
the queue, the router's fan-out (``shard.dispatch``), each slice's
ladder (``serving.pooled``) and down into the ``tt.plan`` /
``tt.forward.*`` kernel spans, producing one span tree per sampled
request, emitted as JSONL (one span per line, schema ``repro.trace/v1``).

Everything is **deterministic by construction** so two same-seed runs
produce byte-identical trace files:

- trace ids are splitmix64 hashes of ``(seed, request_id)`` — no
  ambient entropy (the DET003 rule the sharded tier lives under);
- span ids are per-trace open-order counters;
- timestamps come from the run's :class:`~repro.serving.queue.ManualClock`
  (simulated milliseconds), never ``perf_counter``.

Propagation model: the serving code path is single-threaded, so instead
of threading a context argument through every layer, the process-wide
:class:`RequestTracer` holds the *active* contexts — the sampled
requests of the batch currently being served. ``scope(ctxs)`` activates
them around a batch; :func:`traced_span` / :func:`traced_event` (the
propagation helpers lint rule OBS001 enforces inside ``serving/`` and
``sharding/``) record into every active trace *and* keep feeding the
aggregate tracer; a hook installed into
:func:`repro.telemetry.tracer.trace` captures legacy spans (``tt.*``,
``cache.*``) without touching kernel code. While no scope is active all
helpers collapse to the PR-2 no-op fast path, keeping the disabled-mode
overhead within the <5% budget.

Span record::

    {"schema": "repro.trace/v1", "trace_id": "9f…", "span_id": 2,
     "parent_id": 1, "name": "shard.dispatch", "start_ms": 12.5,
     "end_ms": 13.5, "attrs": {"shard": 1, "breaker": "closed"}}

``parent_id`` is ``null`` for the root (``request``) span.
"""

from __future__ import annotations

import json
import os

from repro.telemetry import tracer as _tracer_mod
from repro.telemetry.events import _json_safe, emit_event
from repro.telemetry.tracer import _Span, _span_name, set_trace_hook

__all__ = [
    "TRACE_SCHEMA",
    "TraceContext",
    "RequestTracer",
    "get_request_tracer",
    "traced_span",
    "traced_event",
    "annotate_span",
    "finish_request",
    "read_trace",
    "validate_trace_record",
    "trace_duration_ms",
    "build_trace_tree",
    "critical_path",
    "slowest_traces",
    "format_trace_tree",
]

TRACE_SCHEMA = "repro.trace/v1"

_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """The admission sanitizer's mixer: deterministic 64-bit avalanche."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    z = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


class TraceContext:
    """One live request trace: its id, spans, and the open-span stack."""

    __slots__ = ("trace_id", "request_id", "spans", "_stack", "_next_id")

    def __init__(self, trace_id: str, request_id: int):
        self.trace_id = trace_id
        self.request_id = request_id
        self.spans: list[dict] = []
        self._stack: list[dict] = []
        self._next_id = 1

    # ------------------------------------------------------------------ #

    def _make(self, name: str, attrs: dict | None, start: float,
              end: float, parent: int | None) -> dict:
        rec = {
            "span_id": self._next_id,
            "parent_id": parent,
            "name": name,
            "start_ms": float(start),
            "end_ms": float(end),
            "attrs": _json_safe(attrs) if attrs else {},
        }
        self._next_id += 1
        self.spans.append(rec)
        return rec

    def open_span(self, name: str, attrs: dict | None, now: float) -> dict:
        parent = self._stack[-1]["span_id"] if self._stack else None
        rec = self._make(name, attrs, now, now, parent)
        self._stack.append(rec)
        return rec

    def close_span(self, rec: dict, now: float) -> None:
        rec["end_ms"] = float(now)
        if self._stack and self._stack[-1] is rec:
            self._stack.pop()
        elif rec in self._stack:  # unbalanced exit; keep the tree sane
            self._stack.remove(rec)

    def record_span(self, name: str, start_ms: float, end_ms: float,
                    **attrs) -> dict:
        """A retroactive, already-closed span (e.g. ``queue.wait``)."""
        parent = self._stack[-1]["span_id"] if self._stack else None
        return self._make(name, attrs, start_ms, end_ms, parent)

    def record_event(self, etype: str, data: dict, now: float) -> dict:
        """An instantaneous event as a zero-duration span."""
        parent = self._stack[-1]["span_id"] if self._stack else None
        return self._make(f"event:{etype}", data, now, now, parent)

    def annotate(self, attrs: dict) -> None:
        """Merge attributes into the innermost open span."""
        if self._stack:
            self._stack[-1]["attrs"].update(_json_safe(attrs))

    def close_all(self, now: float) -> None:
        while self._stack:
            self.close_span(self._stack[-1], now)


class _NullScope:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SCOPE = _NullScope()


class _Scope:
    __slots__ = ("rt", "ctxs")

    def __init__(self, rt: "RequestTracer", ctxs: list[TraceContext]):
        self.rt = rt
        self.ctxs = ctxs

    def __enter__(self):
        self.rt._push_scope(self.ctxs)
        return self

    def __exit__(self, *exc):
        self.rt._pop_scope()
        return False


class _CombinedSpan:
    """One span recorded into every active trace + the aggregate tracer."""

    __slots__ = ("rt", "name", "attrs", "_agg", "_recs")

    def __init__(self, rt: "RequestTracer", name: str, attrs: dict):
        self.rt = rt
        self.name = name
        self.attrs = attrs

    def __enter__(self):
        agg = _tracer_mod._TRACER
        if agg.enabled:
            self._agg = _Span(agg, _span_name(self.name, self.attrs))
            self._agg.__enter__()
        else:
            self._agg = None
        now = self.rt._now()
        self._recs = [(ctx, ctx.open_span(self.name, self.attrs, now))
                      for ctx in self.rt._active]
        return self

    def __exit__(self, *exc):
        now = self.rt._now()
        for ctx, rec in self._recs:
            ctx.close_span(rec, now)
        if self._agg is not None:
            self._agg.__exit__(*exc)
        return False


class RequestTracer:
    """Process-wide owner of request-trace sampling, scopes, and output.

    Off until :meth:`configure` is called (``enabled`` False, every
    entry point an early-out); :meth:`shutdown` returns it to that
    state and closes the JSONL file.
    """

    def __init__(self):
        self._sample = 0
        self._seed_mix = 0
        self._clock = None
        self._fh = None
        self.path: str | None = None
        self._active: list[TraceContext] = []
        self._scopes: list[list[TraceContext]] = []
        self.started = 0
        self.finished = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @property
    def enabled(self) -> bool:
        return self._sample > 0

    def configure(self, *, sample_every: int = 1,
                  path: str | os.PathLike | None = None,
                  clock=None, seed: int = 0) -> None:
        """Enable tracing: sample every Nth request id, write JSONL.

        ``clock`` is the run's ManualClock (or any ms callable); with
        none, every timestamp is 0.0 — still deterministic, just flat.
        The output file is truncated, so same-seed runs are
        byte-identical end to end.
        """
        if sample_every < 1:
            raise ValueError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        self.shutdown()
        self._sample = sample_every
        self._seed_mix = _splitmix64(seed & _MASK64)
        self._clock = clock
        if path is not None:
            self.path = os.fspath(path)
            self._fh = open(self.path, "w")

    def shutdown(self) -> None:
        """Disable tracing, close the sink, drop any dangling scopes."""
        if self._fh is not None:
            self._fh.close()
        self._fh = None
        self.path = None
        self._sample = 0
        self._clock = None
        self._active = []
        self._scopes = []
        set_trace_hook(None)

    def _now(self) -> float:
        clock = self._clock
        return float(clock()) if clock is not None else 0.0

    # ------------------------------------------------------------------ #
    # Trace lifecycle
    # ------------------------------------------------------------------ #

    def maybe_start(self, request_id: int,
                    now: float | None = None) -> TraceContext | None:
        """Start a trace when the request id is sampled, else ``None``."""
        if (not self._sample or request_id is None
                or request_id % self._sample):
            return None
        trace_id = format(
            _splitmix64(self._seed_mix ^ (request_id & _MASK64)), "016x"
        )
        ctx = TraceContext(trace_id, request_id)
        ctx.open_span("request", {"request_id": request_id},
                      self._now() if now is None else now)
        self.started += 1
        return ctx

    def finish(self, ctx: TraceContext | None, status: str, *,
               now: float | None = None, **attrs) -> None:
        """Close a trace (root span gets ``status`` + attrs), write it."""
        if ctx is None:
            return
        now = self._now() if now is None else float(now)
        root = ctx.spans[0]
        root["attrs"].update(_json_safe({"status": status, **attrs}))
        ctx.close_all(now)
        self.finished += 1
        if self._fh is not None:
            for rec in ctx.spans:
                line = {"schema": TRACE_SCHEMA, "trace_id": ctx.trace_id,
                        **rec}
                self._fh.write(json.dumps(line, sort_keys=True) + "\n")
            self._fh.flush()
        from repro.telemetry.flightrec import get_flight_recorder

        recorder = get_flight_recorder()
        if recorder is not None:
            recorder.record_trace(ctx.trace_id, ctx.spans)

    # ------------------------------------------------------------------ #
    # Scopes (the propagation mechanism)
    # ------------------------------------------------------------------ #

    def scope(self, ctxs) -> _Scope | _NullScope:
        """Activate contexts for the dynamic extent of a ``with`` block."""
        live = [c for c in ctxs if c is not None]
        if not live:
            return _NULL_SCOPE
        return _Scope(self, live)

    def _push_scope(self, ctxs: list[TraceContext]) -> None:
        self._scopes.append(self._active)
        self._active = ctxs
        set_trace_hook(_hook)

    def _pop_scope(self) -> None:
        self._active = self._scopes.pop() if self._scopes else []
        if not self._active:
            set_trace_hook(None)

    def event(self, etype: str, data: dict) -> None:
        now = self._now()
        for ctx in self._active:
            ctx.record_event(etype, data, now)


_REQUEST_TRACER = RequestTracer()


def get_request_tracer() -> RequestTracer:
    """The process-wide request tracer (off until configured)."""
    return _REQUEST_TRACER


def _hook(name: str, attrs: dict) -> _CombinedSpan:
    return _CombinedSpan(_REQUEST_TRACER, name, attrs)


def traced_span(name: str, **attrs):
    """The propagation-aware span helper (OBS001's required entry point).

    Inside an active request-trace scope, the span lands in every
    sampled trace of the batch *and* the aggregate tracer; otherwise it
    is exactly :func:`repro.telemetry.trace`.
    """
    rt = _REQUEST_TRACER
    if rt._active:
        return _CombinedSpan(rt, name, attrs)
    return _tracer_mod.trace(name, **attrs)


def traced_event(etype: str, **data) -> None:
    """Emit an event that carries the active trace context, if any.

    With a scope active the emitted record gains ``trace_id`` (one
    active trace) or ``trace_ids`` (a batch of them), and the event is
    mirrored into each trace as a zero-duration ``event:<type>`` span —
    which is how a flight-recorder dump links a breaker transition back
    to the requests in flight when it happened.
    """
    rt = _REQUEST_TRACER
    if not rt._active:
        emit_event(etype, **data)
        return
    ids = sorted({ctx.trace_id for ctx in rt._active})
    rt.event(etype, data)
    if len(ids) == 1:
        emit_event(etype, trace_id=ids[0], **data)
    else:
        emit_event(etype, trace_ids=ids, **data)


def annotate_span(**attrs) -> None:
    """Add attributes to the innermost open span of every active trace."""
    rt = _REQUEST_TRACER
    if rt._active:
        for ctx in rt._active:
            ctx.annotate(attrs)


def finish_request(req, status: str, *, now: float | None = None,
                   **attrs) -> None:
    """Finish the trace attached to a request object (if it has one)."""
    ctx = getattr(req, "trace_ctx", None)
    if ctx is not None:
        req.trace_ctx = None
        _REQUEST_TRACER.finish(ctx, status, now=now, **attrs)


# ---------------------------------------------------------------------- #
# Reading, validation, and the `repro trace` views
# ---------------------------------------------------------------------- #

def validate_trace_record(rec: dict) -> None:
    """Raise ``ValueError`` unless ``rec`` is a valid trace span line."""
    if not isinstance(rec, dict):
        raise ValueError(f"span must be an object, got {type(rec).__name__}")
    if rec.get("schema") != TRACE_SCHEMA:
        raise ValueError(f"unknown trace schema: {rec.get('schema')!r}")
    for key, typ in (("trace_id", str), ("span_id", int), ("name", str),
                     ("start_ms", (int, float)), ("end_ms", (int, float)),
                     ("attrs", dict)):
        if not isinstance(rec.get(key), typ):
            raise ValueError(
                f"span field {key!r} must be {typ}, got {rec.get(key)!r}"
            )
    parent = rec.get("parent_id")
    if parent is not None and not isinstance(parent, int):
        raise ValueError(f"parent_id must be int or null, got {parent!r}")
    if rec["end_ms"] < rec["start_ms"]:
        raise ValueError(
            f"span ends before it starts: {rec['start_ms']} > {rec['end_ms']}"
        )


def read_trace(path: str | os.PathLike) -> dict[str, list[dict]]:
    """Parse a ``repro.trace/v1`` JSONL file into trace_id -> spans."""
    traces: dict[str, list[dict]] = {}
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            validate_trace_record(rec)
            traces.setdefault(rec["trace_id"], []).append(rec)
    for spans in traces.values():
        spans.sort(key=lambda r: r["span_id"])
    return traces


def trace_duration_ms(spans: list[dict]) -> float:
    """Root-span duration of one trace (its end-to-end latency)."""
    root = spans[0]
    return root["end_ms"] - root["start_ms"]


def build_trace_tree(spans: list[dict]) -> dict[int | None, list[dict]]:
    """Parent span id -> children, in span-id order."""
    children: dict[int | None, list[dict]] = {}
    for rec in spans:
        children.setdefault(rec["parent_id"], []).append(rec)
    return children


def critical_path(spans: list[dict]) -> list[dict]:
    """Root-to-leaf chain choosing the longest child at every level."""
    children = build_trace_tree(spans)
    roots = children.get(None, [])
    if not roots:
        return []
    path = [roots[0]]
    while True:
        kids = children.get(path[-1]["span_id"], [])
        if not kids:
            return path
        path.append(max(kids,
                        key=lambda r: (r["end_ms"] - r["start_ms"],
                                       -r["span_id"])))


def slowest_traces(traces: dict[str, list[dict]],
                   n: int = 10) -> list[tuple[str, list[dict]]]:
    """Top-N traces by root duration (ties broken by trace id)."""
    ranked = sorted(traces.items(),
                    key=lambda kv: (-trace_duration_ms(kv[1]), kv[0]))
    return ranked[:n]


def _attr_text(attrs: dict, limit: int = 60) -> str:
    if not attrs:
        return ""
    inner = ",".join(f"{k}={attrs[k]}" for k in sorted(attrs))
    if len(inner) > limit:
        inner = inner[: limit - 1] + "…"
    return f"[{inner}]"


def format_trace_tree(trace_id: str, spans: list[dict]) -> str:
    """Human-readable indented span tree for one trace."""
    children = build_trace_tree(spans)
    lines = [f"trace {trace_id}  "
             f"({len(spans)} spans, {trace_duration_ms(spans):.2f} ms)"]

    def walk(rec: dict, depth: int) -> None:
        dur = rec["end_ms"] - rec["start_ms"]
        lines.append(
            f"  {'  ' * depth}{rec['name']}{_attr_text(rec['attrs'])} "
            f"+{rec['start_ms']:.2f} ms ({dur:.2f} ms)"
        )
        for kid in children.get(rec["span_id"], []):
            walk(kid, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return "\n".join(lines)
