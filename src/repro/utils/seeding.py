"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts either an integer seed,
``None`` (fresh entropy), or an existing :class:`numpy.random.Generator`.
Centralising the conversion keeps experiment scripts reproducible with a
single top-level seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_rng", "spawn_rngs"]


def as_rng(seed: int | None | np.random.Generator) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged so that callers can
    thread a single RNG through a pipeline without reseeding.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None | np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from one seed.

    Children are created via :meth:`numpy.random.Generator.spawn` (PCG64
    stream splitting), so they are statistically independent and stable
    across runs for a fixed parent seed.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return list(as_rng(seed).spawn(n))
