"""Shared utilities: RNG handling, validation helpers, integer factorization."""

from repro.utils.factorization import (
    factorize_into,
    prime_factors,
    suggested_tt_shapes,
)
from repro.utils.seeding import as_rng, spawn_rngs
from repro.utils.validation import (
    check_1d_int_array,
    check_csr,
    check_positive,
    check_probability,
)

__all__ = [
    "as_rng",
    "spawn_rngs",
    "factorize_into",
    "prime_factors",
    "suggested_tt_shapes",
    "check_1d_int_array",
    "check_csr",
    "check_positive",
    "check_probability",
]
