"""Integer factorization for TT shape selection.

TT decomposition of an ``M x N`` embedding table requires factoring the row
count ``M`` into ``d`` integers and the embedding dimension ``N`` into
``d`` integers (paper Eq. 2). The paper pads the row count up to a
convenient product (e.g. 10131227 rows -> 200*220*250 = 11,000,000); this
module provides the padding/balancing logic used by
:func:`repro.tt.shapes.TTShape.suggested`.
"""

from __future__ import annotations

import math

__all__ = ["prime_factors", "factorize_into", "suggested_tt_shapes"]


def prime_factors(n: int) -> list[int]:
    """Return the prime factorization of ``n`` in non-decreasing order."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    factors: list[int] = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            factors.append(d)
            n //= d
        d += 1 if d == 2 else 2
    if n > 1:
        factors.append(n)
    return factors


def factorize_into(n: int, d: int) -> list[int]:
    """Split ``n`` into ``d`` factors whose product is exactly ``n``.

    The factors are balanced greedily (largest prime factors assigned to the
    currently-smallest bucket) so the result is as close to ``n**(1/d)`` per
    factor as the prime structure allows. Raises if ``n`` has fewer than one
    unit of mass per factor only in the degenerate ``n < 1`` case; factors of
    1 are allowed (e.g. ``factorize_into(7, 3) == [1, 1, 7]``).
    """
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    buckets = [1] * d
    for p in sorted(prime_factors(n), reverse=True):
        smallest = min(range(d), key=lambda i: buckets[i])
        buckets[smallest] *= p
    return sorted(buckets)


def suggested_tt_shapes(n: int, d: int, *, allow_round_up: bool = True) -> list[int]:
    """Return ``d`` balanced factors whose product is ``>= n``.

    When ``allow_round_up`` is true (the paper's strategy), ``n`` is padded
    upward until it admits a factorization where the ratio between the
    largest and smallest factor is small. Padding a row count is harmless:
    rows beyond the true cardinality are simply never indexed. With
    ``allow_round_up=False`` the product is exactly ``n``.

    Examples
    --------
    >>> suggested_tt_shapes(10131227, 3)
    [200, 224, 226]
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not allow_round_up:
        return factorize_into(n, d)

    best: list[int] | None = None
    best_cost: tuple[float, int] | None = None
    target = n ** (1.0 / d)
    # Search a window of padded sizes; the window is generous enough that a
    # well-balanced factorization always exists (numbers with many small
    # prime factors are dense).
    limit = max(64, int(math.ceil(target)) * 4)
    for padded in range(n, n + limit + 1):
        factors = factorize_into(padded, d)
        imbalance = factors[-1] / factors[0]
        cost = (imbalance, padded - n)
        if best_cost is None or cost < best_cost:
            best, best_cost = factors, cost
        if imbalance <= 1.5 and padded > n:
            break
    assert best is not None
    return best
