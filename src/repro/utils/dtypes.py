"""Central floating-point dtype policy for the numeric hot paths.

The TT kernels (Algorithms 1-2), the MLP towers and the LFU cache must
agree on one floating dtype: a stray ``float64`` gather buffer next to
float32 cores silently upcasts a whole GEMM chain (extra memory traffic)
while a stray float32 temporary next to float64 parameters silently
*loses* precision. Both failure modes are invisible at the call site,
which is why ``repro lint`` (docs/STATIC_ANALYSIS.md) bans hard-coded
``np.float64`` literals and dtype-less ``np.empty/zeros/ones``
allocations inside ``repro/tt``, ``repro/ops`` and ``repro/cache``.

The policy lives here instead:

- :data:`DEFAULT_DTYPE` / :func:`default_dtype` — the process-wide
  floating dtype (float64 by default, matching the NumPy substrate the
  repo has always trained in).
- :func:`set_default_dtype` — switch the policy (e.g. to float32 to
  mimic the paper's fp32 tables); newly built modules allocate in the
  new dtype.
- :func:`result_dtype` — derive the dtype a kernel output should have
  from its array operands (falling back to the policy), asserting the
  operands agree so dtype drift fails loudly at the boundary instead of
  propagating.
- :data:`COUNT_DTYPE` — frequency accumulators (the LFU hash table)
  always use float64: float32 stops counting exactly at 2^24 accesses,
  which a busy cache reaches in minutes.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

__all__ = [
    "DEFAULT_DTYPE",
    "COUNT_DTYPE",
    "default_dtype",
    "set_default_dtype",
    "dtype_policy",
    "result_dtype",
]

# The historical substrate dtype; ``set_default_dtype`` changes the
# *active* policy but never this constant.
DEFAULT_DTYPE: np.dtype = np.dtype(np.float64)

# Frequency counts stay exact far past float32's 2^24 integer ceiling.
COUNT_DTYPE: np.dtype = np.dtype(np.float64)

_active_dtype: np.dtype = DEFAULT_DTYPE


def default_dtype() -> np.dtype:
    """The floating dtype new parameters and compute buffers should use."""
    return _active_dtype


def set_default_dtype(dtype) -> np.dtype:
    """Set the process-wide floating dtype policy; returns the previous one.

    Only floating dtypes are accepted — embedding indices, offsets and
    cache keys are integer-typed by contract and never follow the policy.
    """
    global _active_dtype
    new = np.dtype(dtype)
    if new.kind != "f":
        raise ValueError(f"default dtype must be floating, got {new}")
    previous = _active_dtype
    _active_dtype = new
    return previous


@contextmanager
def dtype_policy(dtype):
    """Temporarily switch the dtype policy (tests, experiments)."""
    previous = set_default_dtype(dtype)
    try:
        yield np.dtype(dtype)
    finally:
        set_default_dtype(previous)


def result_dtype(*operands) -> np.dtype:
    """Common floating dtype of the array ``operands``.

    Non-array operands (scalars, ``None``) and integer arrays are
    ignored; with no floating operand the active policy dtype is
    returned. Disagreeing floating operands raise — a kernel mixing
    float32 and float64 inputs is exactly the silent-upcast bug the
    dtype discipline exists to catch.
    """
    found: np.dtype | None = None
    for op in operands:
        dt = getattr(op, "dtype", None)
        if dt is None or np.dtype(dt).kind != "f":
            continue
        dt = np.dtype(dt)
        if found is None:
            found = dt
        elif found != dt:
            raise TypeError(
                f"operands mix floating dtypes {found} and {dt}; "
                "unify on one dtype (see repro.utils.dtypes)"
            )
    return found if found is not None else _active_dtype
