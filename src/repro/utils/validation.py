"""Argument-validation helpers shared across the library.

These raise early, with messages naming the offending argument, instead of
letting NumPy produce an opaque broadcasting error deep inside a kernel.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "IndexOutOfRangeError",
    "check_positive",
    "check_probability",
    "check_1d_int_array",
    "check_csr",
]


class IndexOutOfRangeError(IndexError, ValueError):
    """An index array addressed a row outside ``[0, num_rows)``.

    Subclasses both ``IndexError`` (the semantically right category — a bad
    lookup address) and ``ValueError`` (what these helpers historically
    raised), so existing ``except ValueError`` callers keep working.
    """


def check_positive(name: str, value: float, *, strict: bool = True) -> None:
    """Raise ``ValueError`` unless ``value`` is positive (or non-negative)."""
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_probability(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` lies in ``[0, 1]``."""
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


def check_1d_int_array(name: str, arr: np.ndarray, *, min_value: int | None = None,
                       max_value: int | None = None) -> np.ndarray:
    """Validate and canonicalise a 1-D integer index array.

    Returns the array as ``int64`` so downstream indexing is uniform.
    """
    arr = np.asarray(arr)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if not np.issubdtype(arr.dtype, np.integer):
        raise TypeError(f"{name} must have an integer dtype, got {arr.dtype}")
    arr = arr.astype(np.int64, copy=False)
    if arr.size:
        if min_value is not None and arr.min() < min_value:
            raise IndexOutOfRangeError(
                f"{name} contains values below {min_value}: min={arr.min()}"
            )
        if max_value is not None and arr.max() > max_value:
            raise IndexOutOfRangeError(
                f"{name} contains values above {max_value}: max={arr.max()}"
            )
    return arr


def check_csr(indices: np.ndarray, offsets: np.ndarray, num_rows: int) -> tuple[np.ndarray, np.ndarray]:
    """Validate an (indices, offsets) CSR bag description.

    ``offsets`` must be monotonically non-decreasing, start at 0, and end at
    ``len(indices)``; every index must address a valid row. Returns both
    arrays canonicalised to ``int64``.
    """
    indices = check_1d_int_array("indices", indices, min_value=0, max_value=num_rows - 1)
    offsets = check_1d_int_array("offsets", offsets, min_value=0)
    if offsets.size == 0:
        raise ValueError("offsets must contain at least one element")
    if offsets[0] != 0:
        raise ValueError(f"offsets[0] must be 0, got {offsets[0]}")
    if offsets[-1] != indices.size:
        raise ValueError(
            f"offsets[-1] ({offsets[-1]}) must equal len(indices) ({indices.size})"
        )
    if np.any(np.diff(offsets) < 0):
        raise ValueError("offsets must be non-decreasing")
    return indices, offsets
