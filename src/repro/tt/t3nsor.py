"""T3nsor-style baseline: decompress the whole table on the fly (Fig. 8).

The state-of-the-art TT embedding library the paper compares against
(Hrinchuk et al., 2020, "t3nsor") materialises the *entire* dense table
from the TT cores on every forward pass, then performs a standard
embedding gather. Consequently its activation memory footprint equals the
uncompressed table (``O(M*N)``) and its compute does not shrink with batch
size — the two deficiencies Fig. 8 quantifies. TT-Rec's kernel only ever
materialises the ``batch x N`` rows actually touched.

This re-implementation reproduces that strategy faithfully on the same
core layout so the Fig. 8 comparison is apples-to-apples.
"""

from __future__ import annotations

import numpy as np

from repro.ops.embedding import segment_sum
from repro.ops.module import Module, Parameter
from repro.tt.decomposition import tt_full_tensor
from repro.tt.initialization import tt_core_initializer
from repro.tt.shapes import TTShape
from repro.utils.seeding import as_rng
from repro.utils.validation import check_csr

__all__ = ["T3nsorEmbeddingBag"]


class T3nsorEmbeddingBag(Module):
    """TT-compressed table that decompresses fully on each forward pass."""

    def __init__(self, num_rows: int, dim: int, *, shape: TTShape | None = None,
                 rank: int = 32, d: int = 3, mode: str = "sum",
                 initializer="gaussian",
                 rng: int | None | np.random.Generator = None,
                 name: str = "t3nsor_emb"):
        if mode not in ("sum", "mean"):
            raise ValueError(f"mode must be 'sum' or 'mean', got {mode!r}")
        if shape is None:
            shape = TTShape.suggested(num_rows, dim, d=d, rank=rank)
        rng = as_rng(rng)
        self.num_rows = num_rows
        self.dim = dim
        self.shape = shape
        self.mode = mode
        init_fn = initializer if callable(initializer) else tt_core_initializer(initializer)
        self.cores = [
            Parameter(core, name=f"{name}.core{k}", sparse=False)
            for k, core in enumerate(init_fn(shape, rng))
        ]
        self._cache: dict | None = None

    @property
    def dtype(self) -> np.dtype:
        return self.cores[0].data.dtype

    def materialize(self) -> np.ndarray:
        """Full-table decompression — executed on *every* forward pass."""
        return tt_full_tensor([p.data for p in self.cores])[: self.num_rows]

    def lookup(self, indices: np.ndarray) -> np.ndarray:
        """Row materialisation — via full-table decompression, of course."""
        indices = np.asarray(indices, dtype=np.int64)
        return self.materialize()[indices]

    @property
    def peak_activation_elements(self) -> int:
        """Elements of transient state per forward: the whole padded table."""
        return self.shape.padded_rows * self.dim

    def forward(self, indices: np.ndarray, offsets: np.ndarray | None = None,
                per_sample_weights: np.ndarray | None = None) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        if offsets is None:
            offsets = np.arange(indices.size + 1, dtype=np.int64)
        indices, offsets = check_csr(indices, offsets, self.num_rows)
        full = self.materialize()
        rows = full[indices]
        alpha = None
        if per_sample_weights is not None:
            alpha = np.asarray(per_sample_weights, dtype=self.dtype).reshape(-1)
            rows = rows * alpha[:, None]
        out = segment_sum(rows, offsets)
        counts = np.diff(offsets)
        if self.mode == "mean":
            scale = np.asarray(np.where(counts > 0, counts, 1), dtype=out.dtype)
            out = out / scale[:, None]
        self._cache = {"indices": indices, "alpha": alpha, "counts": counts}
        return out

    __call__ = forward

    def backward(self, grad_out: np.ndarray) -> None:
        """Backprop through full decompression: dense ``dW`` then core grads.

        The dense table gradient is scattered from the touched rows, then
        pushed through the reconstruction — an ``O(M*N)``-memory step, the
        exact cost TT-Rec's Algorithm 2 avoids.
        """
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        c = self._cache
        grad_out = np.asarray(grad_out, dtype=self.dtype)
        counts = c["counts"]
        if self.mode == "mean":
            scale = np.asarray(np.where(counts > 0, counts, 1),
                               dtype=grad_out.dtype)
            grad_out = grad_out / scale[:, None]
        bag_ids = np.repeat(np.arange(len(counts)), counts)
        grad_rows = grad_out[bag_ids]
        if c["alpha"] is not None:
            grad_rows = grad_rows * c["alpha"][:, None]
        d_full = np.zeros((self.shape.padded_rows, self.dim),
                          dtype=grad_rows.dtype)
        np.add.at(d_full, c["indices"], grad_rows)
        self._backprop_full(d_full)

    def _backprop_full(self, d_full: np.ndarray) -> None:
        """Core gradients from a dense table gradient.

        Treats every padded row as "looked up once with gradient
        ``d_full[i]``" and reuses the TT chain-rule sweep; this is
        mathematically the adjoint of :func:`tt_full_tensor`.
        """
        from repro.tt.embedding_bag import TTEmbeddingBag
        from repro.tt.planner import ExecutionPlanner

        helper = TTEmbeddingBag.__new__(TTEmbeddingBag)
        helper.num_rows = self.shape.padded_rows
        helper.dim = self.dim
        helper.shape = self.shape
        helper.cores = self.cores
        helper.planner = ExecutionPlanner(self.shape, "l2r",
                                          itemsize=self.dtype.itemsize)
        all_rows = np.arange(self.shape.padded_rows, dtype=np.int64)
        decoded = self.shape.decode_indices(all_rows)
        _, lefts = helper._row_chain(decoded)
        helper._accumulate_core_grads(decoded, d_full, lefts)
