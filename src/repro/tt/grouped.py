"""Grouped multi-table TT kernel: one batched chain for many tables.

A DLRM looks up 26 tables per iteration; issuing 26 separate TT chains
leaves batched-GEMM throughput on the table (pun intended) when the
per-table batch is small. ``GroupedTTEmbeddingBag`` fuses the lookups of
*same-shaped* tables: core slices are gathered per table, concatenated
along the batch axis, pushed through a single Algorithm 1/2 chain, and
split back — mathematically identical to per-table execution (tested
bit-for-bit) with one GEMM dispatch per TT core instead of one per
(table, core).

Execution goes through a shared :class:`~repro.tt.planner.ExecutionPlanner`:
each table's indices are deduplicated once (when ``dedup`` is on) and the
fused chain runs through pooled scratch buffers reused across steps. The
grouped path always keeps left partials for the fused Algorithm 2 sweep,
which pins the schedule to ``l2r`` (see planner docs) — the planner still
contributes dedup, buffer reuse and ``tt.plan.*`` telemetry here.

This mirrors how production libraries (FBGEMM's batched TT kernels,
torchrec's grouped/pooled embedding ops) amortise kernel-launch and GEMM
setup across tables.
"""

from __future__ import annotations

import numpy as np

from repro.ops.embedding import segment_sum
from repro.ops.module import Module
from repro.tt.embedding_bag import TTEmbeddingBag
from repro.tt.kernels import scatter_add_rows
from repro.tt.planner import ExecutionPlanner
from repro.utils.validation import check_csr

__all__ = ["GroupedTTEmbeddingBag"]


class GroupedTTEmbeddingBag(Module):
    """Fused executor over several same-shape :class:`TTEmbeddingBag`s.

    The member tables keep their own cores/parameters (so optimizers,
    checkpoints and the DLRM wiring are unchanged); only the *execution*
    is fused. Tables must share an identical :class:`TTShape` and pooling
    mode.

    Parameters
    ----------
    tables:
        Same-shape member tables.
    dedup:
        Deduplicate each table's indices before the fused chain; ``None``
        (default) inherits ``tables[0].dedup``.
    plan_policy:
        Planner policy for the fused chain; ``None`` inherits
        ``tables[0].planner.policy``.
    """

    def __init__(self, tables: list[TTEmbeddingBag], *,
                 dedup: bool | None = None, plan_policy: str | None = None):
        if not tables:
            raise ValueError("need at least one table")
        shape = tables[0].shape
        mode = tables[0].mode
        for i, t in enumerate(tables[1:], start=1):
            if t.shape != shape:
                raise ValueError(
                    f"table {i} has a different TTShape; grouped execution "
                    "requires identical shapes"
                )
            if t.mode != mode:
                raise ValueError("all tables must share the pooling mode")
        self.tables = list(tables)
        self.shape = shape
        self.mode = mode
        self.dim = tables[0].dim
        self.dedup = tables[0].dedup if dedup is None else bool(dedup)
        policy = tables[0].planner.policy if plan_policy is None else plan_policy
        self.planner = ExecutionPlanner(
            shape, policy, itemsize=tables[0].dtype.itemsize
        )
        self._cache: dict | None = None
        self._did_backward = False

    @property
    def dtype(self) -> np.dtype:
        return self.tables[0].dtype

    @property
    def num_tables(self) -> int:
        return len(self.tables)

    # ------------------------------------------------------------------ #

    def _gather_core(self, k: int, decoded_list: list[np.ndarray]) -> np.ndarray:
        """Concatenate core-``k`` slices across tables: ``(sum_n, R, n_k, R')``."""
        parts = [
            t.cores[k].data[dec[k]]
            for t, dec in zip(self.tables, decoded_list)
        ]
        return np.concatenate(parts, axis=0)

    def _make_gather(self, decoded_list: list[np.ndarray], total: int):
        """Pooled fused gather: per-table ``np.take`` into one scratch view."""
        def gather(k: int) -> np.ndarray:
            tail = self.tables[0].cores[k].data.shape[1:]
            buf = self.planner.pool.take(("gather", k), (total, *tail),
                                         self.dtype)
            lo = 0
            for t, dec in zip(self.tables, decoded_list):
                hi = lo + dec.shape[1]
                np.take(t.cores[k].data, dec[k], axis=0, out=buf[lo:hi])
                lo = hi
            return buf
        return gather

    def forward_all(self, sparse: list[tuple[np.ndarray, np.ndarray]],
                    per_sample_weights: list[np.ndarray] | None = None
                    ) -> list[np.ndarray]:
        """Pooled outputs for every table, one fused chain."""
        if len(sparse) != self.num_tables:
            raise ValueError(
                f"expected {self.num_tables} (indices, offsets) pairs, "
                f"got {len(sparse)}"
            )
        checked = []
        decoded_list = []
        inverses = []
        alphas = []
        for t, (indices, offsets) in enumerate(sparse):
            indices = np.asarray(indices, dtype=np.int64)
            indices, offsets = check_csr(indices, offsets,
                                         self.tables[t].num_rows)
            checked.append((indices, offsets))
            plan = self.planner.plan_batch(indices, dedup=self.dedup,
                                           need_lefts=True)
            decoded_list.append(plan.decoded)
            inverses.append(plan.inverse)
            if per_sample_weights is not None and per_sample_weights[t] is not None:
                a = np.asarray(per_sample_weights[t], dtype=self.dtype).reshape(-1)
                if a.shape[0] != indices.shape[0]:
                    raise ValueError(f"table {t}: weight length mismatch")
                alphas.append(a)
            else:
                alphas.append(None)

        counts_per_table = [d.shape[1] for d in decoded_list]
        total = int(sum(counts_per_table))
        splits = np.cumsum(counts_per_table)[:-1]

        # Fused Algorithm 1 over the concatenated (deduplicated)
        # pseudo-batch; left partials are needed for the fused backward
        # sweep, so the planner pins l2r here.
        schedule = self.planner.schedule_for(total, need_lefts=True)
        rows_all, lefts = self.planner.execute_chain(
            schedule, self._make_gather(decoded_list, total), total,
            self.dtype, keep_lefts=True, pooled=True,
        )

        outputs = []
        for t, ((indices, offsets), alpha) in enumerate(zip(checked, alphas)):
            lo = 0 if t == 0 else splits[t - 1]
            hi = splits[t] if t < self.num_tables - 1 else total
            rows = rows_all[lo:hi]
            if inverses[t] is not None:
                rows = rows[inverses[t]]
            weighted = rows if alpha is None else rows * alpha[:, None]
            out = segment_sum(weighted, offsets)
            counts = np.diff(offsets)
            if self.mode == "mean":
                scale = np.asarray(np.where(counts > 0, counts, 1),
                                   dtype=out.dtype)
                out = out / scale[:, None]
            outputs.append(out)
        self._cache = {
            "checked": checked, "decoded_list": decoded_list,
            "inverses": inverses, "alphas": alphas,
            "splits": splits, "total": total, "lefts": lefts,
        }
        self._did_backward = False
        return outputs

    def backward_all(self, grads: list[np.ndarray]) -> None:
        """Fused Algorithm 2: one right-sweep for every table's gradients.

        Consumes the forward cache; calling it twice for one
        ``forward_all`` raises instead of double-accumulating.
        """
        if self._cache is None:
            if self._did_backward:
                raise RuntimeError(
                    "backward_all called twice for one forward_all; core "
                    "gradients would double-accumulate — run forward_all "
                    "again first"
                )
            raise RuntimeError("backward_all called before forward_all")
        c = self._cache
        if len(grads) != self.num_tables:
            raise ValueError(f"expected {self.num_tables} gradients")
        total = c["total"]
        if total == 0:
            self._cache = None
            self._did_backward = True
            return

        grad_rows_parts = []
        for t, ((indices, offsets), alpha, inverse, grad) in enumerate(
                zip(c["checked"], c["alphas"], c["inverses"], grads)):
            grad = np.asarray(grad, dtype=self.dtype)
            counts = np.diff(offsets)
            if self.mode == "mean":
                scale = np.asarray(np.where(counts > 0, counts, 1),
                                   dtype=grad.dtype)
                grad = grad / scale[:, None]
            bag_ids = np.repeat(np.arange(len(counts)), counts)
            g = grad[bag_ids]
            if alpha is not None:
                g = g * alpha[:, None]
            if inverse is not None:
                # Combine gradient contributions of deduplicated indices.
                combined = np.zeros((c["decoded_list"][t].shape[1], self.dim),
                                    dtype=g.dtype)
                scatter_add_rows(combined, inverse, g)
                g = combined
            grad_rows_parts.append(g)
        grad_rows = np.concatenate(grad_rows_parts, axis=0)

        decoded_list = c["decoded_list"]
        splits = c["splits"]
        lefts = c["lefts"]
        n = total
        d = self.shape.d
        right = np.ones((n, 1, 1), dtype=grad_rows.dtype)
        q = 1
        for k in range(d - 1, -1, -1):
            r_prev = self.shape.ranks[k]
            r_next = self.shape.ranks[k + 1]
            nk = self.shape.col_factors[k]
            left = (lefts[k - 1] if k > 0
                    else np.ones((n, 1, 1), dtype=grad_rows.dtype))
            p = left.shape[1]
            d_out = grad_rows.reshape(n, p, nk * q)
            tmp = np.matmul(left.transpose(0, 2, 1), d_out)
            tmp = tmp.reshape(n, r_prev * nk, q)
            g = np.matmul(tmp, right.transpose(0, 2, 1))
            g = g.reshape(n, r_prev, nk, r_next)
            # split per table and scatter into each table's core grad
            for t, (g_part, dec) in enumerate(
                    zip(np.split(g, splits, axis=0), decoded_list)):
                if dec.shape[1]:
                    scatter_add_rows(self.tables[t].cores[k].grad, dec[k], g_part)
                    self.tables[t].cores[k].record_touched(dec[k])
            if k > 0:
                core = self._gather_core(k, decoded_list)
                right = np.matmul(core.reshape(n, r_prev * nk, r_next),
                                  right.reshape(n, r_next, q))
                right = right.reshape(n, r_prev, nk * q)
                q *= nk
        self._cache = None
        self._did_backward = True
