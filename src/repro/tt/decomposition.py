"""TT-SVD decomposition of a dense matrix and exact reconstruction.

These are the classical algorithms from Oseledets (2011), specialised to
the matrix-TT ("TT-matrix") layout used for embedding tables (paper Eq. 2):
the ``M x N`` matrix is reshaped to a ``d``-dimensional tensor with modes
``(m_k * n_k)`` and decomposed by successive truncated SVDs.

They serve three roles in this reproduction:

1. Correctness oracle — ``tt_reconstruct(tt_svd(W)) == W`` for full-rank
   shapes, which pins down the index conventions used by the fast kernels.
2. Initialising a TT table from a pre-trained dense table.
3. The cache-eviction discussion in §4.2 (decomposing evicted rows back
   into TT is what the paper deliberately avoids doing online).
"""

from __future__ import annotations

import numpy as np

from repro.tt.shapes import TTShape
from repro.utils.dtypes import default_dtype

__all__ = ["tt_svd", "tt_reconstruct", "tt_full_tensor"]


def _matrix_to_tensor(matrix: np.ndarray, shape: TTShape) -> np.ndarray:
    """Reshape ``(M, N)`` (padded) to mode-paired tensor ``(m1*n1, ..., md*nd)``."""
    d = shape.d
    m, n = shape.row_factors, shape.col_factors
    t = matrix.reshape(*m, *n)  # (m1..md, n1..nd)
    # interleave to (m1, n1, m2, n2, ...)
    perm = [x for k in range(d) for x in (k, d + k)]
    t = t.transpose(perm)
    return t.reshape([m[k] * n[k] for k in range(d)])


def tt_svd(matrix: np.ndarray, shape: TTShape, *, rtol: float = 0.0) -> list[np.ndarray]:
    """Decompose a dense table into TT cores via successive truncated SVD.

    Parameters
    ----------
    matrix:
        Dense table, ``(shape.num_rows, shape.dim)``. Rows are zero-padded
        up to ``shape.padded_rows`` before reshaping.
    shape:
        Target TT shape; its ranks cap the truncation at each boundary.
    rtol:
        Additional relative singular-value cutoff (0 keeps everything the
        rank cap allows).

    Returns
    -------
    list of cores in the *mode-first* layout ``(m_k, R_{k-1}, n_k, R_k)``
    (see :class:`TTShape`), directly loadable into
    :meth:`repro.tt.embedding_bag.TTEmbeddingBag.load_cores`.
    """
    matrix = np.asarray(matrix, dtype=default_dtype())
    if matrix.shape != (shape.num_rows, shape.dim):
        raise ValueError(
            f"matrix shape {matrix.shape} != ({shape.num_rows}, {shape.dim})"
        )
    if shape.padded_rows != shape.num_rows:
        pad = np.zeros((shape.padded_rows - shape.num_rows, shape.dim),
                       dtype=matrix.dtype)
        matrix = np.vstack([matrix, pad])
    t = _matrix_to_tensor(matrix, shape)

    d = shape.d
    cores: list[np.ndarray] = []
    unfolding = t.reshape(t.shape[0], -1)
    r_prev = 1
    for k in range(d - 1):
        rows = r_prev * shape.row_factors[k] * shape.col_factors[k]
        unfolding = unfolding.reshape(rows, -1)
        u, s, vt = np.linalg.svd(unfolding, full_matrices=False)
        r = min(shape.ranks[k + 1], s.size)
        if rtol > 0 and s.size:
            keep = s > rtol * s[0]
            r = min(r, max(1, int(keep.sum())))
        u, s, vt = u[:, :r], s[:r], vt[:r]
        core = u.reshape(r_prev, shape.row_factors[k], shape.col_factors[k], r)
        cores.append(np.ascontiguousarray(core.transpose(1, 0, 2, 3)))
        unfolding = s[:, None] * vt
        r_prev = r
    last = unfolding.reshape(r_prev, shape.row_factors[-1], shape.col_factors[-1], 1)
    cores.append(np.ascontiguousarray(last.transpose(1, 0, 2, 3)))
    return cores


def tt_full_tensor(cores: list[np.ndarray]) -> np.ndarray:
    """Contract mode-first cores into the full ``(padded_rows, dim)`` matrix."""
    d = len(cores)
    # res carries shape (m1..mk, n1..nk, R_k) throughout the loop.
    first = cores[0]  # (m1, 1, n1, R1)
    m1, r0, n1, r1 = first.shape
    if r0 != 1:
        raise ValueError(f"first core must have R_0 == 1, got {r0}")
    res = first.reshape(m1, n1, r1)
    ms, ns = [m1], [n1]
    for k in range(1, d):
        core = cores[k]  # (mk, R_{k-1}, nk, Rk)
        mk, rk_prev, nk, rk = core.shape
        if rk_prev != res.shape[-1]:
            raise ValueError(
                f"rank mismatch between core {k - 1} (R={res.shape[-1]}) and "
                f"core {k} (expects {rk_prev})"
            )
        mat = core.transpose(1, 0, 2, 3).reshape(rk_prev, mk * nk * rk)
        res = res.reshape(-1, rk_prev) @ mat  # (prod_m*prod_n, mk*nk*rk)
        res = res.reshape(*ms, *ns, mk, nk, rk)
        # move the new mk in with the row modes, nk with the column modes
        axes = list(range(res.ndim))
        nm, nn = len(ms), len(ns)
        perm = axes[:nm] + [nm + nn] + axes[nm:nm + nn] + [nm + nn + 1, nm + nn + 2]
        res = res.transpose(perm)
        ms.append(mk)
        ns.append(nk)
    if res.shape[-1] != 1:
        raise ValueError(f"last core must have R_d == 1, got {res.shape[-1]}")
    rows = int(np.prod(ms))
    cols = int(np.prod(ns))
    return np.ascontiguousarray(res.reshape(rows, cols))


def tt_reconstruct(cores: list[np.ndarray], shape: TTShape) -> np.ndarray:
    """Materialise the dense ``(num_rows, dim)`` table (padding stripped)."""
    full = tt_full_tensor(cores)
    if full.shape != (shape.padded_rows, shape.dim):
        raise ValueError(
            f"cores produce table of shape {full.shape}, expected "
            f"({shape.padded_rows}, {shape.dim})"
        )
    return full[: shape.num_rows]
