"""Low-level kernels shared by the TT embedding operators.

The production forward/backward paths in
:class:`~repro.tt.embedding_bag.TTEmbeddingBag` are built from batched
GEMMs (``np.matmul`` over stacked 3-D operands — the NumPy analogue of the
cuBLAS ``GemmBatchedEx`` calls in paper Algorithms 1-2). This module holds:

- :func:`scatter_add_rows` — duplicate-combining scatter-add used to
  accumulate per-sample core gradients (much faster than raw ``np.add.at``
  when indices repeat, which Zipf-distributed lookups guarantee);
- :func:`tt_lookup_reference` — a deliberately naive per-row implementation
  of paper Eq. 3 used as the correctness oracle in tests and as the
  "no batching" arm of the kernel ablation benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry import trace
from repro.tt.shapes import TTShape
from repro.utils.dtypes import result_dtype

__all__ = ["scatter_add_rows", "tt_lookup_reference"]


def scatter_add_rows(buf: np.ndarray, rows: np.ndarray, vals: np.ndarray) -> None:
    """``buf[rows] += vals`` with correct duplicate handling.

    ``buf`` has shape ``(m, ...)``, ``rows`` is ``(n,)`` int, ``vals`` is
    ``(n, ...)``. Duplicates in ``rows`` are first combined with a sorted
    segmented reduction, then written with one fancy-indexed add — this
    turns the O(n) scalar loop of ``np.add.at`` into two vectorized passes.
    """
    rows = np.asarray(rows, dtype=np.int64)
    if rows.size == 0:
        return
    if rows.shape[0] != vals.shape[0]:
        raise ValueError(f"rows ({rows.shape[0]}) and vals ({vals.shape[0]}) disagree")
    with trace("kernels.scatter_add"):
        flat = vals.reshape(rows.shape[0], -1)
        order = np.argsort(rows, kind="stable")
        sorted_rows = rows[order]
        sorted_vals = flat[order]
        uniq, starts = np.unique(sorted_rows, return_index=True)
        summed = np.add.reduceat(sorted_vals, starts, axis=0)
        # In-place accumulation into the caller's gradient buffer is this
        # function's documented contract ("buf[rows] += vals").
        buf_flat = buf.reshape(buf.shape[0], -1)  # repro: noqa[MUT001]
        buf_flat[uniq] += summed  # repro: noqa[MUT001]


def tt_lookup_reference(cores: list[np.ndarray], shape: TTShape,
                        indices: np.ndarray) -> np.ndarray:
    """Per-row TT lookup by explicit matrix chain (paper Eq. 3), no batching.

    ``cores`` use the mode-first layout ``(m_k, R_{k-1}, n_k, R_k)``.
    Quadratic-time oracle: clear, slow, and used to validate the fast path.
    """
    indices = np.asarray(indices, dtype=np.int64)
    decoded = shape.decode_indices(indices)
    with trace("kernels.naive_chain", rows=int(indices.size)):
        return _naive_chain(cores, shape, decoded, indices.size)


def _naive_chain(cores: list[np.ndarray], shape: TTShape, decoded: np.ndarray,
                 num_rows: int) -> np.ndarray:
    # The gather buffer follows the cores' dtype (the single dtype policy;
    # a hard-coded float64 here would silently upcast float32 cores).
    dtype = result_dtype(*cores)
    out = np.empty((num_rows, shape.dim), dtype=dtype)
    for row in range(num_rows):
        acc = np.ones((1, 1), dtype=dtype)
        for k in range(shape.d):
            slice_k = cores[k][decoded[k, row]]  # (R_{k-1}, n_k, R_k)
            r_prev, nk, rk = slice_k.shape
            # (P, R_{k-1}) @ (R_{k-1}, n_k*R_k) -> (P, n_k*R_k) -> (P*n_k, R_k)
            acc = (acc @ slice_k.reshape(r_prev, nk * rk)).reshape(-1, rk)
        out[row] = acc.reshape(-1)
    return out
