"""TT-core and embedding-table weight initialization (paper §3.2).

The paper's observation: DLRM quality tracks how closely the *materialised*
table distribution matches the DLRM default ``Uniform(-1/sqrt(n), 1/sqrt(n))``
(``n`` = number of rows), whose best Gaussian approximation (minimum
KL(uniform || gaussian)) is ``N(0, 1/(3n))`` — Table 1. Initialising TT
cores i.i.d. Gaussian/uniform makes the core *product* sharply peaked at
zero (Fig. 3 left); Algorithm 3 ("sampled Gaussian") fixes this by
rejection-sampling core entries away from zero before scaling.
"""

from __future__ import annotations

import math

import numpy as np

from repro.tt.shapes import TTShape
from repro.utils.dtypes import default_dtype
from repro.utils.seeding import as_rng

__all__ = [
    "kl_uniform_gaussian",
    "optimal_gaussian_for_uniform",
    "uniform_initializer",
    "gaussian_initializer",
    "dlrm_default_initializer",
    "sampled_gaussian_cores",
    "gaussian_cores",
    "uniform_cores",
    "tt_core_initializer",
    "CORE_INIT_STRATEGIES",
]


# --------------------------------------------------------------------- #
# Analytics behind Table 1
# --------------------------------------------------------------------- #

def kl_uniform_gaussian(a: float, b: float, mu: float, sigma2: float) -> float:
    """Closed-form ``KL(Uniform(a,b) || N(mu, sigma2))``.

    ``KL = -ln(b-a) + 0.5*ln(2*pi*sigma2) + E[(x-mu)^2] / (2*sigma2)`` with
    the expectation over the uniform: ``((b-mu)^3 - (a-mu)^3) / (3(b-a))``.
    """
    if b <= a:
        raise ValueError(f"need b > a, got a={a}, b={b}")
    if sigma2 <= 0:
        raise ValueError(f"sigma2 must be > 0, got {sigma2}")
    second_moment = ((b - mu) ** 3 - (a - mu) ** 3) / (3.0 * (b - a))
    return (
        -math.log(b - a)
        + 0.5 * math.log(2.0 * math.pi * sigma2)
        + second_moment / (2.0 * sigma2)
    )


def optimal_gaussian_for_uniform(a: float, b: float) -> tuple[float, float]:
    """``(mu, sigma2)`` minimising ``KL(Uniform(a,b) || N)`` — paper §3.2.

    First-order conditions give the moment match ``mu=(a+b)/2``,
    ``sigma2=(b-a)^2/12``; for the DLRM default ``Uniform(±1/sqrt(n))``
    this is exactly ``N(0, 1/(3n))``.
    """
    return (a + b) / 2.0, (b - a) ** 2 / 12.0


# --------------------------------------------------------------------- #
# Dense-table initializers (Table 1 sweep)
# --------------------------------------------------------------------- #

def uniform_initializer(bound: float):
    """Initializer drawing from ``Uniform(-bound, bound)``."""
    def init(rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
        return rng.uniform(-bound, bound, size=shape)
    return init


def gaussian_initializer(std: float):
    """Initializer drawing from ``N(0, std^2)``."""
    def init(rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
        return rng.normal(0.0, std, size=shape)
    return init


def dlrm_default_initializer(num_rows: int):
    """The DLRM reference default, ``Uniform(±1/sqrt(num_rows))``."""
    return uniform_initializer(1.0 / math.sqrt(num_rows))


# --------------------------------------------------------------------- #
# TT-core initializers
# --------------------------------------------------------------------- #

def _per_core_scale(shape: TTShape, target_variance: float, *,
                    account_for_rank: bool) -> float:
    """Per-entry std so the materialised row entries have ``target_variance``.

    Each table entry is a sum over ``prod(R_k)`` rank paths of products of
    ``d`` core entries; with i.i.d. zero-mean entries of variance ``v`` the
    entry variance is ``v^d * prod_{k=1}^{d-1} R_k``. The paper's
    Algorithm 3 scales by ``(sqrt(1/3n))^{1/d}`` per core, ignoring the
    rank fan-in; ``account_for_rank=True`` (our default) divides it out so
    the product matches ``N(0, target_variance)`` exactly — this is the
    behaviour Fig. 3 (right) demonstrates.
    """
    d = shape.d
    rank_product = 1.0
    if account_for_rank:
        rank_product = float(np.prod(shape.ranks[1:-1]))
    entry_var = (target_variance / rank_product) ** (1.0 / d)
    return math.sqrt(entry_var)


def _rejection_normal(rng: np.random.Generator, size: int, cutoff: float) -> np.ndarray:
    """Standard normal samples conditioned on ``|x| >= cutoff`` (Algorithm 3).

    Vectorized rejection: resample the still-rejected tail until all
    entries pass. With the paper's cutoff of 2.0 acceptance is ~4.6%, so we
    oversample by the reciprocal acceptance each round.
    """
    if cutoff < 0:
        raise ValueError(f"cutoff must be >= 0, got {cutoff}")
    if cutoff == 0.0:
        return rng.normal(0.0, 1.0, size=size)
    from scipy.stats import norm

    accept = 2.0 * norm.sf(cutoff)
    out = np.empty(size, dtype=default_dtype())
    filled = 0
    while filled < size:
        need = size - filled
        batch = rng.normal(0.0, 1.0, size=max(64, int(need / max(accept, 1e-6) * 1.2)))
        ok = batch[np.abs(batch) >= cutoff]
        take = min(ok.size, need)
        out[filled:filled + take] = ok[:take]
        filled += take
    return out


def _truncated_normal_std(cutoff: float) -> float:
    """Std of ``N(0,1)`` conditioned on ``|x| >= cutoff`` (two-sided tail)."""
    if cutoff == 0.0:
        return 1.0
    from scipy.stats import norm

    # E[x^2 | |x|>=c] = 1 + c*phi(c)/sf(c) for the symmetric two-sided tail.
    return math.sqrt(1.0 + cutoff * norm.pdf(cutoff) / norm.sf(cutoff))


def sampled_gaussian_cores(shape: TTShape, *, cutoff: float = 2.0,
                           target_variance: float | None = None,
                           account_for_rank: bool = True,
                           rng: int | None | np.random.Generator = None) -> list[np.ndarray]:
    """Paper Algorithm 3: sampled-Gaussian TT-core initialization.

    1. Fill every core with ``N(0,1)`` entries rejection-sampled so that
       ``|x| >= cutoff`` (pushing mass away from zero — the fix for the
       zero-peaked product PDF of Fig. 3 left).
    2. Normalise to unit entry variance, then scale each core by
       ``target_std^(1/d)`` so the materialised table approximates
       ``N(0, 1/(3n))`` — the optimal Gaussian of §3.2 (``n`` = row count).

    Returns cores in the mode-first layout ``(m_k, R_{k-1}, n_k, R_k)``.
    """
    rng = as_rng(rng)
    if target_variance is None:
        target_variance = 1.0 / (3.0 * shape.num_rows)
    scale = _per_core_scale(shape, target_variance, account_for_rank=account_for_rank)
    scale /= _truncated_normal_std(cutoff)
    cores = []
    for k in range(shape.d):
        cshape = shape.core_shape(k)
        n_entries = int(np.prod(cshape))
        vals = _rejection_normal(rng, n_entries, cutoff) * scale
        cores.append(vals.reshape(cshape))
    return cores


def gaussian_cores(shape: TTShape, *, target_variance: float | None = None,
                   account_for_rank: bool = True,
                   rng: int | None | np.random.Generator = None) -> list[np.ndarray]:
    """Plain i.i.d. Gaussian cores scaled for the same target product variance."""
    rng = as_rng(rng)
    if target_variance is None:
        target_variance = 1.0 / (3.0 * shape.num_rows)
    scale = _per_core_scale(shape, target_variance, account_for_rank=account_for_rank)
    return [rng.normal(0.0, scale, size=shape.core_shape(k)) for k in range(shape.d)]


def uniform_cores(shape: TTShape, *, target_variance: float | None = None,
                  account_for_rank: bool = True,
                  rng: int | None | np.random.Generator = None) -> list[np.ndarray]:
    """i.i.d. uniform cores with matched per-entry variance (Fig. 6c arm)."""
    rng = as_rng(rng)
    if target_variance is None:
        target_variance = 1.0 / (3.0 * shape.num_rows)
    scale = _per_core_scale(shape, target_variance, account_for_rank=account_for_rank)
    bound = scale * math.sqrt(3.0)  # Uniform(-b, b) has variance b^2/3
    return [rng.uniform(-bound, bound, size=shape.core_shape(k)) for k in range(shape.d)]


CORE_INIT_STRATEGIES = {
    "sampled_gaussian": sampled_gaussian_cores,
    "gaussian": gaussian_cores,
    "uniform": uniform_cores,
}


def tt_core_initializer(strategy: str = "sampled_gaussian", **kwargs):
    """Return a ``(shape, rng) -> cores`` callable for a named strategy.

    Strategies: ``sampled_gaussian`` (paper Algorithm 3, the default),
    ``gaussian``, ``uniform`` — the three arms of Fig. 6(c).
    """
    try:
        fn = CORE_INIT_STRATEGIES[strategy]
    except KeyError:
        raise ValueError(
            f"unknown init strategy {strategy!r}; options: "
            f"{sorted(CORE_INIT_STRATEGIES)}"
        ) from None

    def init(shape: TTShape, rng: int | None | np.random.Generator = None) -> list[np.ndarray]:
        return fn(shape, rng=rng, **kwargs)

    return init
