"""TT-EmbeddingBag: the paper's core operator (Algorithms 1 and 2).

Forward (Algorithm 1): each queried row index is decoded into per-core
indices ``(i_1, ..., i_d)``; the row is the chain of matrix products
``G_1(i_1) G_2(:,i_2) ... G_d(:,i_d)`` (paper Eq. 3), evaluated for the
whole batch at once as a sequence of *batched GEMMs* (``np.matmul`` over
stacked 3-D operands — the NumPy analogue of cuBLAS ``GemmBatchedEx``).
Rows are then pooled into bags by summation/averaging with optional
per-sample weights (Eq. 6-7).

Backward (Algorithm 2): the chain rule of Eq. 4-5. For every core ``k`` the
per-sample gradient is ``L_{k-1}^T dO R_k^T`` where ``L`` are the left
partial products (``tr_i`` in the paper — either stored from forward or
recomputed, §4.2's trade-off) and ``R`` right partial products built by a
backward sweep. Per-sample gradients are scattered into the shared cores
with a duplicate-combining scatter-add.

Storage layout: cores are kept mode-first, ``(m_k, R_{k-1}, n_k, R_k)``,
so a lookup is one contiguous row gather; see :class:`repro.tt.shapes.TTShape`.
"""

from __future__ import annotations

import numpy as np

from repro.ops.embedding import segment_sum
from repro.ops.module import Module, Parameter
from repro.telemetry import trace
from repro.tt.decomposition import tt_reconstruct
from repro.tt.initialization import tt_core_initializer
from repro.tt.kernels import scatter_add_rows
from repro.tt.planner import ExecutionPlanner
from repro.tt.shapes import TTShape
from repro.utils.seeding import as_rng
from repro.utils.validation import check_csr

__all__ = ["TTEmbeddingBag"]


class TTEmbeddingBag(Module):
    """Bag-pooled embedding lookup backed by TT cores.

    Parameters
    ----------
    num_rows, dim:
        Logical table shape (the dense table being replaced).
    shape:
        Explicit :class:`TTShape`; if ``None`` one is derived via
        :meth:`TTShape.suggested` from ``d`` and ``rank``.
    rank, d:
        Uniform internal TT-rank and number of cores for the derived shape.
    mode:
        Bag pooling, ``"sum"`` or ``"mean"``.
    initializer:
        Either a strategy name from
        :data:`repro.tt.initialization.CORE_INIT_STRATEGIES`
        (default ``"sampled_gaussian"``, paper Algorithm 3) or a callable
        ``(TTShape, rng) -> list[np.ndarray]``.
    store_intermediates:
        Keep the forward partial products (``tr_i``) for backward. Disabling
        recomputes them (paper §4.2: lower memory, more FLOPs) — the
        recompute-vs-store ablation bench flips this flag.
    dedup:
        Collapse duplicate indices within a batch before the TT chain and
        expand afterwards. The paper's GPU kernel does not dedup (Fig. 11
        discusses exactly this reuse gap vs EmbeddingBag); dedup is off by
        default for faithfulness but available as an optimization.
    plan_policy:
        Contraction-schedule policy for the per-batch
        :class:`~repro.tt.planner.ExecutionPlanner`: ``"auto"`` (default)
        picks the cheapest order by the FLOP/bytes model, ``"fixed"``/
        ``"l2r"``/``"r2l"``/``"split:k"`` pin one. Forwards that keep left
        partials for Algorithm 2 always run ``l2r`` (see planner docs).
    """

    def __init__(self, num_rows: int, dim: int, *, shape: TTShape | None = None,
                 rank: int = 32, d: int = 3, mode: str = "sum",
                 initializer="sampled_gaussian",
                 rng: int | None | np.random.Generator = None,
                 store_intermediates: bool = True, dedup: bool = False,
                 plan_policy: str = "auto", name: str = "tt_emb"):
        if mode not in ("sum", "mean"):
            raise ValueError(f"mode must be 'sum' or 'mean', got {mode!r}")
        if shape is None:
            shape = TTShape.suggested(num_rows, dim, d=d, rank=rank)
        if shape.num_rows != num_rows or shape.dim != dim:
            raise ValueError(
                f"shape describes a {shape.num_rows}x{shape.dim} table, "
                f"expected {num_rows}x{dim}"
            )
        rng = as_rng(rng)
        self.num_rows = num_rows
        self.dim = dim
        self.shape = shape
        self.mode = mode
        self.store_intermediates = store_intermediates
        self.dedup = dedup
        if callable(initializer):
            init_fn = initializer
        else:
            init_fn = tt_core_initializer(initializer)
        cores = init_fn(shape, rng)
        self.cores: list[Parameter] = []
        for k, core in enumerate(cores):
            expected = shape.core_shape(k)
            if core.shape != expected:
                raise ValueError(
                    f"initializer produced core {k} of shape {core.shape}, "
                    f"expected {expected}"
                )
            self.cores.append(Parameter(core, name=f"{name}.core{k}", sparse=True))
        self.planner = ExecutionPlanner(
            shape, plan_policy, itemsize=self.cores[0].data.dtype.itemsize
        )
        self._cache: dict | None = None
        self._did_backward = False

    @property
    def dtype(self) -> np.dtype:
        """The single floating dtype of the cores (and every output)."""
        return self.cores[0].data.dtype

    # ------------------------------------------------------------------ #
    # Forward
    # ------------------------------------------------------------------ #

    def _core_data(self) -> list[np.ndarray]:
        return [p.data for p in self.cores]

    def _row_chain(self, decoded: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        """Batched TT chain (Algorithm 1). Returns ``(rows, left_partials)``.

        ``decoded`` is ``(d, n)``; ``rows`` is ``(n, dim)``; ``left_partials[k]``
        is the product of cores ``0..k`` with shape ``(n, prod_{j<=k} n_j, R_{k+1})``
        (the ``tr_k`` buffers of Algorithm 1). Always the ``l2r`` schedule
        (left partials only exist for it) and always unpooled, so callers
        may hold the returned buffers indefinitely.
        """
        schedule = self.planner.schedule_for(decoded.shape[1], need_lefts=True)
        rows, lefts = self.planner.execute(schedule, decoded, self._core_data(),
                                           keep_lefts=True)
        return rows, lefts

    def lookup(self, indices: np.ndarray) -> np.ndarray:
        """Materialise the requested rows (no pooling, no backward cache).

        Runs *unpooled*: lookup is called between forward and backward
        (cache population, scrubbing, row write-back), so it must not
        clobber pooled left partials a pending backward still needs.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            return np.zeros((0, self.dim), dtype=self.dtype)
        plan = self.planner.plan_batch(indices, dedup=self.dedup,
                                       need_lefts=False)
        rows, _ = self.planner.execute(plan.schedule, plan.decoded,
                                       self._core_data())
        return rows[plan.inverse] if plan.inverse is not None else rows

    def forward(self, indices: np.ndarray, offsets: np.ndarray | None = None,
                per_sample_weights: np.ndarray | None = None) -> np.ndarray:
        """Pooled lookup. With ``offsets=None`` each index is its own bag."""
        indices = np.asarray(indices, dtype=np.int64)
        if offsets is None:
            offsets = np.arange(indices.size + 1, dtype=np.int64)
        indices, offsets = check_csr(indices, offsets, self.num_rows)
        if per_sample_weights is not None:
            alpha = np.asarray(per_sample_weights, dtype=self.dtype).reshape(-1)
            if alpha.shape[0] != indices.shape[0]:
                raise ValueError(
                    f"per_sample_weights length {alpha.shape[0]} != "
                    f"len(indices) {indices.shape[0]}"
                )
        else:
            alpha = None

        if indices.size == 0:
            # All bags empty: zero output, nothing for backward to touch.
            self._cache = {
                "indices": indices,
                "decoded": np.empty((self.shape.d, 0), dtype=np.int64),
                "inverse": None, "alpha": alpha,
                "counts": np.diff(offsets), "lefts": [],
            }
            self._did_backward = False
            return np.zeros((offsets.size - 1, self.dim), dtype=self.dtype)

        # One plan shared with backward: dedup once, pick the schedule,
        # run through pooled scratch buffers (reused across steps). Left
        # partials are pool views, valid until the next pooled call —
        # i.e. exactly until this forward's backward has consumed them.
        plan = self.planner.plan_batch(indices, dedup=self.dedup,
                                       need_lefts=self.store_intermediates)
        uniq_rows, lefts = self.planner.execute(
            plan.schedule, plan.decoded, self._core_data(),
            keep_lefts=self.store_intermediates, pooled=True,
        )
        rows = uniq_rows[plan.inverse] if plan.inverse is not None else uniq_rows
        decoded, inverse = plan.decoded, plan.inverse

        with trace("tt.forward.pool"):
            weighted = rows if alpha is None else rows * alpha[:, None]
            out = segment_sum(weighted, offsets)
            counts = np.diff(offsets)
            if self.mode == "mean":
                scale = np.asarray(np.where(counts > 0, counts, 1),
                                   dtype=out.dtype)
                out = out / scale[:, None]
        self._cache = {
            "indices": indices,
            "decoded": decoded,
            "inverse": inverse,
            "alpha": alpha,
            "counts": counts,
            "lefts": lefts if self.store_intermediates else None,
        }
        self._did_backward = False
        return out

    __call__ = forward

    # ------------------------------------------------------------------ #
    # Backward
    # ------------------------------------------------------------------ #

    def backward(self, grad_out: np.ndarray) -> None:
        """Accumulate core gradients for the last forward call (Algorithm 2).

        Consumes the forward cache: a second ``backward`` for the same
        forward would silently double-accumulate gradients, so it raises
        instead.
        """
        if self._cache is None:
            if self._did_backward:
                raise RuntimeError(
                    "backward called twice for one forward; core gradients "
                    "would double-accumulate — run forward again first"
                )
            raise RuntimeError("backward called before forward")
        c = self._cache
        grad_out = np.asarray(grad_out, dtype=self.dtype)
        counts = c["counts"]
        if self.mode == "mean":
            scale = np.asarray(np.where(counts > 0, counts, 1),
                               dtype=grad_out.dtype)
            grad_out = grad_out / scale[:, None]
        bag_ids = np.repeat(np.arange(len(counts)), counts)
        grad_rows = grad_out[bag_ids]  # (n_indices, dim)
        if c["alpha"] is not None:
            grad_rows = grad_rows * c["alpha"][:, None]
        if c["inverse"] is not None:
            # Combine gradient contributions of duplicate indices.
            n_uniq = c["decoded"].shape[1]
            combined = np.zeros((n_uniq, self.dim), dtype=grad_rows.dtype)
            scatter_add_rows(combined, c["inverse"], grad_rows)
            grad_rows = combined

        decoded = c["decoded"]
        lefts = c["lefts"]
        if lefts is None:
            # Recompute-intermediates arm (paper §4.2, Algorithm 2 line 3).
            with trace("tt.backward.recompute"):
                _, lefts = self._row_chain(decoded)
        self._accumulate_core_grads(decoded, grad_rows, lefts)
        self._cache = None
        self._did_backward = True

    def _accumulate_core_grads(self, decoded: np.ndarray, grad_rows: np.ndarray,
                               lefts: list[np.ndarray]) -> None:
        n = decoded.shape[1]
        if n == 0:
            return
        d = self.shape.d
        right = np.ones((n, 1, 1), dtype=grad_rows.dtype)  # R_d == 1, Q_{d-1} == 1
        q = 1
        for k in range(d - 1, -1, -1):
            r_prev = self.shape.ranks[k]
            r_next = self.shape.ranks[k + 1]
            nk = self.shape.col_factors[k]
            left = (lefts[k - 1] if k > 0
                    else np.ones((n, 1, 1), dtype=grad_rows.dtype))
            p = left.shape[1]
            with trace("tt.backward.gemm", core=k):
                # dO as (n, P_{k-1}, n_k * Q_k)
                d_out = grad_rows.reshape(n, p, nk * q)
                # (n, R_{k-1}, P) @ (n, P, n_k*Q) -> (n, R_{k-1}, n_k*Q)
                tmp = np.matmul(left.transpose(0, 2, 1), d_out)
                tmp = tmp.reshape(n, r_prev * nk, q)
                # (n, R_{k-1}*n_k, Q) @ (n, Q, R_k) -> per-sample core gradient
                g = np.matmul(tmp, right.transpose(0, 2, 1))
                g = g.reshape(n, r_prev, nk, r_next)
            with trace("tt.backward.scatter", core=k):
                scatter_add_rows(self.cores[k].grad, decoded[k], g)
            self.cores[k].record_touched(decoded[k])
            if k > 0:
                with trace("tt.backward.gemm_right", core=k):
                    core = self.cores[k].data[decoded[k]]  # (n, R_{k-1}, n_k, R_k)
                    # Right_{k-1} = G_k(i_k) · Right_k, reshaped to (n, R_{k-1}, n_k*Q)
                    right = np.matmul(core.reshape(n, r_prev * nk, r_next), right.reshape(n, r_next, q))
                    right = right.reshape(n, r_prev, nk * q)
                q *= nk

    # ------------------------------------------------------------------ #
    # Interop
    # ------------------------------------------------------------------ #

    def materialize(self) -> np.ndarray:
        """Reconstruct the full dense ``(num_rows, dim)`` table from the cores.

        Intended for analysis/tests and for populating caches; this is the
        O(M*N) operation the TT format exists to avoid during training.
        """
        return tt_reconstruct([p.data for p in self.cores], self.shape)

    def load_cores(self, cores: list[np.ndarray]) -> None:
        """Replace core values in place (e.g. with a :func:`tt_svd` result)."""
        if len(cores) != self.shape.d:
            raise ValueError(f"expected {self.shape.d} cores, got {len(cores)}")
        for k, core in enumerate(cores):
            expected = self.shape.core_shape(k)
            if core.shape != expected:
                raise ValueError(f"core {k} has shape {core.shape}, expected {expected}")
            self.cores[k].data[...] = core

    def num_parameters(self) -> int:
        return self.shape.num_params()

    def compression_ratio(self) -> float:
        """Dense-table params divided by TT params (paper Table 2)."""
        return self.shape.compression_ratio()
