"""Row write-back: absorbing learned dense rows into TT cores.

Paper §4.2 discards the dense updates of evicted cache lines because
"decomposing the evicted vectors and updating the decomposed parameters
with the existing TT cores [is] equivalent to dynamically tracking TT
decomposition for a streaming matrix, which is a challenging algebraic
problem itself."

This module implements the practical approximation the paper stops short
of: treat the learned rows as regression targets and take a few damped
least-squares (gradient) steps on

    L(cores) = ||TT(rows) - targets||^2 / n  +  ridge * drift_penalty

where ``drift_penalty`` anchors the cores to their current values so
absorbing a handful of rows cannot disturb the rest of the table. This is
*not* an exact streaming TT-SVD — it is the cheap local correction one
can afford at eviction time — and the eviction-policy ablation bench
measures whether it is worth anything (supporting or refuting the paper's
"discard is fine" choice).
"""

from __future__ import annotations

import numpy as np

from repro.tt.embedding_bag import TTEmbeddingBag

__all__ = ["absorb_rows", "reconstruction_error"]


def reconstruction_error(emb: TTEmbeddingBag, row_ids: np.ndarray,
                         targets: np.ndarray) -> float:
    """RMS error between the TT table's rows and the targets."""
    row_ids = np.asarray(row_ids, dtype=np.int64)
    targets = np.asarray(targets, dtype=emb.dtype)
    diff = emb.lookup(row_ids) - targets
    return float(np.sqrt(np.mean(diff * diff)))


def absorb_rows(emb: TTEmbeddingBag, row_ids: np.ndarray, targets: np.ndarray, *,
                steps: int = 20, lr: float = 0.5, ridge: float = 1e-3,
                tol: float = 0.0) -> dict:
    """Nudge the TT cores so ``emb.lookup(row_ids) ~= targets``.

    Runs ``steps`` gradient-descent iterations on the ridge-damped squared
    reconstruction error of just these rows, reusing the production
    forward/backward kernels. Early-stops once the RMS error falls below
    ``tol``.

    Returns a stats dict: ``{"before": rms, "after": rms, "steps": used}``.

    Notes
    -----
    - ``ridge`` pulls the cores toward their pre-call values (proximal
      damping), bounding collateral movement of un-targeted rows.
    - Rank limits what is representable: if the targets are far outside
      the TT manifold's reach the residual plateaus — exactly the paper's
      point about why this is hard in general.
    """
    row_ids = np.asarray(row_ids, dtype=np.int64)
    targets = np.asarray(targets, dtype=emb.dtype)
    if targets.shape != (row_ids.size, emb.dim):
        raise ValueError(
            f"targets must have shape ({row_ids.size}, {emb.dim}), "
            f"got {targets.shape}"
        )
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    if row_ids.size == 0:
        return {"before": 0.0, "after": 0.0, "steps": 0}

    anchors = [p.data.copy() for p in emb.cores]
    before = reconstruction_error(emb, row_ids, targets)
    n = row_ids.size
    used = 0
    for _ in range(steps):
        current = reconstruction_error(emb, row_ids, targets)
        if current <= tol:
            break
        used += 1
        emb.zero_grad()
        out = emb.forward(row_ids)  # one bag per row
        grad = 2.0 * (out - targets) / n
        emb.backward(grad)
        for p, anchor in zip(emb.cores, anchors):
            p.data -= lr * (p.grad + ridge * (p.data - anchor))
    after = reconstruction_error(emb, row_ids, targets)
    return {"before": before, "after": after, "steps": used}
