"""Batch execution planner for the TT contraction chain (Algorithm 1).

The TT row lookup is a chain of batched GEMMs whose cost depends on the
*order* the chain is contracted in — FBTT-Embedding (the paper's released
CUDA kernel) and EL-Rec both tune this before launching kernels. This
module brings that planning layer to the NumPy hot path:

- **Dedup once, share everywhere.** :meth:`ExecutionPlanner.plan_batch`
  collapses duplicate indices with one ``np.unique`` and hands the same
  :class:`BatchPlan` (decoded unique indices + inverse map) to forward,
  backward and the hybrid cache's miss path. Under Zipf traffic most of a
  batch is duplicates, so this removes most of the GEMM work outright.

- **Schedule selection by exact FLOP/bytes counting.** For a given
  :class:`~repro.tt.shapes.TTShape` the chain can be contracted
  left-to-right (``l2r``), right-to-left (``r2l``) or from both ends
  meeting at core ``k`` (``split@k``). :func:`candidate_schedules` counts
  exact multiply-add FLOPs and modelled memory traffic per row for every
  candidate; ``auto`` policy picks the cheapest, ``fixed``/``l2r``/
  ``r2l``/``split:k`` pin one. Because boundary ranks are 1, ``r2l`` has
  the same cost as ``split@1`` and ``l2r`` the same as ``split@{d-1}``;
  interior splits are only distinct for ``d >= 4``.

- **Buffer reuse.** In pooled mode every GEMM writes into a
  :class:`BufferPool` scratch view (``np.matmul(..., out=)`` /
  ``np.take(..., out=)``) instead of allocating fresh ``lefts`` each step.
  Pooled buffers are only valid until the next pooled call on the same
  planner, so side paths (``lookup`` during cache population/scrub) run
  unpooled — see ``TTEmbeddingBag.lookup``.

Backward (Algorithm 2) consumes *left* partial products, so any forward
that must keep or recompute ``lefts`` is pinned to ``l2r`` regardless of
policy; alternate schedules apply to lookup-only execution (inference,
cache fills, ``store_intermediates=False`` forwards recompute in ``l2r``).
This is also what keeps planned gradients bit-identical to the unplanned
path. See docs/KERNELS.md for the cost model and the benchmark gate.
Planning effort is observable through the ``tt.plan.*`` counters:
``flops_planned``/``flops_executed``/``flops_saved``, ``dedup_removed``,
and ``tt.plan.memo_hits``/``tt.plan.memo_misses`` for the schedule memo.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.telemetry import annotate_span, get_registry, trace
from repro.tt.shapes import TTShape

__all__ = [
    "Schedule",
    "BatchPlan",
    "BufferPool",
    "ExecutionPlanner",
    "candidate_schedules",
    "schedule_cost",
]

# Weight (in FLOP-equivalents per byte) of modelled memory traffic when
# ranking schedules. The chain is small-operand / gather-heavy, so a pure
# FLOP count under-penalises schedules that stream larger intermediates;
# 0.5 flop/byte roughly matches the measured FLOP:bandwidth balance of
# NumPy batched matmul on the bench shapes and is documented in
# docs/KERNELS.md. Selection only changes where FLOP counts tie or nearly
# tie, so the exact value is not load-bearing.
_ALPHA_BYTES = 0.5


@dataclass(frozen=True)
class Schedule:
    """One contraction order for a fixed :class:`TTShape`.

    ``flops_per_row`` counts exact multiply-add FLOPs (2 per MAC) for one
    looked-up row; ``bytes_per_row`` is the modelled traffic: gathered
    core slices (read + write of the gather buffer) plus every GEMM's
    operand reads and output write, times the element size.
    """

    kind: str  # "l2r" | "r2l" | "split"
    split: int | None
    flops_per_row: int
    bytes_per_row: int
    gemms: int

    @property
    def label(self) -> str:
        return f"split@{self.split}" if self.kind == "split" else self.kind

    def cost(self, n: int) -> float:
        """Modelled execution cost of an ``n``-row batch (FLOP-equivalents)."""
        return n * (self.flops_per_row + _ALPHA_BYTES * self.bytes_per_row)


@dataclass
class BatchPlan:
    """A planned batch: schedule + dedup bookkeeping shared by fwd/bwd.

    ``decoded`` is ``(d, n_unique)``; ``inverse`` maps each of the ``n``
    raw positions to its unique row (``None`` when dedup is off or the
    batch had no duplicates removed).
    """

    schedule: Schedule
    n: int
    n_unique: int
    decoded: np.ndarray
    inverse: np.ndarray | None
    flops_planned: int
    flops_baseline: int


def _partial_l2r(shape: TTShape, itemsize: int, lo: int, hi: int):
    """Cost of the left-to-right sweep over cores ``lo..hi-1``.

    Returns ``(flops, bytes, gemms, out_cols)`` per row, where the sweep's
    result has shape ``(prod col[lo:hi]) x ranks[hi]`` and ``out_cols`` is
    that row count (``P``).
    """
    col, ranks = shape.col_factors, shape.ranks
    gathered = ranks[lo] * col[lo] * ranks[lo + 1]
    traffic = 2 * gathered  # read slice + write gather buffer
    flops = 0
    gemms = 0
    p = col[lo]
    for k in range(lo + 1, hi):
        slice_elems = ranks[k] * col[k] * ranks[k + 1]
        traffic += 2 * slice_elems
        out_elems = p * ranks[lo] * col[k] * ranks[k + 1]
        # A (P*R_lo, R_k) @ B (R_k, n_k*R_{k+1}) -> C
        flops += 2 * p * ranks[lo] * ranks[k] * col[k] * ranks[k + 1]
        traffic += p * ranks[lo] * ranks[k] + slice_elems + out_elems
        gemms += 1
        p *= col[k]
    return flops, traffic * itemsize, gemms, p


def _partial_r2l(shape: TTShape, itemsize: int, lo: int, hi: int):
    """Cost of the right-to-left sweep over cores ``lo..hi-1``.

    The result has shape ``ranks[lo] x (prod col[lo:hi])`` per row;
    returns ``(flops, bytes, gemms, out_cols)`` with ``out_cols = Q``.
    """
    col, ranks = shape.col_factors, shape.ranks
    last = hi - 1
    gathered = ranks[last] * col[last] * ranks[last + 1]
    traffic = 2 * gathered
    flops = 0
    gemms = 0
    q = col[last] * ranks[hi]  # ranks[hi] == 1 in both call sites (hi == d)
    for k in range(hi - 2, lo - 1, -1):
        slice_elems = ranks[k] * col[k] * ranks[k + 1]
        traffic += 2 * slice_elems
        # A (R_k*n_k, R_{k+1}) @ B (R_{k+1}, Q) -> C
        flops += 2 * ranks[k] * col[k] * ranks[k + 1] * q
        out_elems = ranks[k] * col[k] * q
        traffic += slice_elems + ranks[k + 1] * q + out_elems
        gemms += 1
        q *= col[k]
    return flops, traffic * itemsize, gemms, q


def schedule_cost(shape: TTShape, kind: str, split: int | None = None,
                  itemsize: int = 8) -> Schedule:
    """Exact per-row FLOP/bytes model for one contraction order."""
    d = shape.d
    if kind == "l2r":
        flops, nbytes, gemms, _ = _partial_l2r(shape, itemsize, 0, d)
        return Schedule("l2r", None, flops, nbytes, gemms)
    if kind == "r2l":
        flops, nbytes, gemms, _ = _partial_r2l(shape, itemsize, 0, d)
        return Schedule("r2l", None, flops, nbytes, gemms)
    if kind == "split":
        if split is None or not (1 <= split <= d - 1):
            raise ValueError(f"split must be in [1, {d - 1}], got {split}")
        lf, lb, lg, p_left = _partial_l2r(shape, itemsize, 0, split)
        rf, rb, rg, q_right = _partial_r2l(shape, itemsize, split, d)
        r_mid = shape.ranks[split]
        # Combine: (P_left, R_split) @ (R_split, Q_right) -> the row.
        flops = lf + rf + 2 * p_left * r_mid * q_right
        nbytes = lb + rb + itemsize * (
            p_left * r_mid + r_mid * q_right + p_left * q_right
        )
        return Schedule("split", split, flops, nbytes, lg + rg + 1)
    raise ValueError(f"unknown schedule kind {kind!r}")


def candidate_schedules(shape: TTShape, itemsize: int = 8) -> list[Schedule]:
    """Every contraction order the planner considers, ``l2r`` first.

    Ordering matters: ``auto`` selection breaks cost ties in list order,
    preferring the simplest schedule (``l2r``, then ``r2l``, then splits).
    """
    cands = [schedule_cost(shape, "l2r", itemsize=itemsize),
             schedule_cost(shape, "r2l", itemsize=itemsize)]
    for s in range(1, shape.d):
        cands.append(schedule_cost(shape, "split", s, itemsize=itemsize))
    return cands


def _bucket(n: int) -> int:
    """Round up to the next power of two (minimum 1)."""
    return 1 << max(0, int(n - 1).bit_length()) if n > 1 else 1


class BufferPool:
    """Reusable scratch buffers for chain intermediates.

    Each logical stage asks for ``take(key, shape, dtype)`` and receives a
    C-contiguous view of a flat buffer whose capacity is rounded up to the
    next power of two, so steady-state steps of a bucketed batch size
    allocate nothing. Views are only valid until the same key is taken
    with a larger size — callers must not hold them across pooled calls.
    """

    def __init__(self):
        self._bufs: dict = {}

    def take(self, key, shape: tuple[int, ...], dtype) -> np.ndarray:
        size = math.prod(shape)
        dtype = np.dtype(dtype)
        buf = self._bufs.get(key)
        if buf is None or buf.size < size or buf.dtype != dtype:
            buf = np.empty(_bucket(size), dtype=dtype)
            self._bufs[key] = buf
        return buf[:size].reshape(shape)

    def nbytes(self) -> int:
        return sum(b.nbytes for b in self._bufs.values())

    def clear(self) -> None:
        self._bufs.clear()


class ExecutionPlanner:
    """Per-module planner: schedule choice, dedup, pooled execution.

    Parameters
    ----------
    shape:
        The :class:`TTShape` all plans are made for.
    policy:
        ``"auto"`` picks the cheapest schedule per batch-size bucket;
        ``"fixed"``/``"l2r"`` pins left-to-right (the pre-planner
        behaviour); ``"r2l"`` pins right-to-left; ``"split:k"`` pins the
        two-sided sweep meeting at core ``k``. Any forward that must
        produce left partials for Algorithm 2 uses ``l2r`` regardless.
    itemsize:
        Element size (bytes) used by the traffic model.
    """

    def __init__(self, shape: TTShape, policy: str = "auto", itemsize: int = 8):
        self.shape = shape
        self.itemsize = int(itemsize)
        self.candidates = candidate_schedules(shape, self.itemsize)
        self._l2r = self.candidates[0]
        self._forced: Schedule | None = None
        policy = str(policy)
        if policy == "auto":
            pass
        elif policy in ("fixed", "l2r"):
            self._forced = self._l2r
        elif policy == "r2l":
            self._forced = self.candidates[1]
        elif policy.startswith("split:"):
            split = int(policy.split(":", 1)[1])
            self._forced = schedule_cost(shape, "split", split, self.itemsize)
        else:
            raise ValueError(
                f"unknown plan policy {policy!r}; expected 'auto', 'fixed', "
                "'l2r', 'r2l' or 'split:<k>'"
            )
        self.policy = policy
        self.pool = BufferPool()
        self._memo: dict[tuple[int, bool], Schedule] = {}
        reg = get_registry()
        self._counters = {
            key: reg.counter(f"tt.plan.{key}")
            for key in ("flops_saved", "flops_planned", "flops_executed",
                        "dedup_removed", "memo_hits", "memo_misses")
        }

    # ------------------------------------------------------------------ #
    # Planning
    # ------------------------------------------------------------------ #

    def schedule_for(self, n: int, *, need_lefts: bool = False) -> Schedule:
        """Cheapest legal schedule for an ``n``-row batch (memoized).

        Memoized per ``(batch-size bucket, need_lefts)``: buffer
        capacities are bucket-sized and :meth:`Schedule.cost` may weigh
        batch size, so the bucket is part of the plan identity.
        """
        key = (_bucket(n), bool(need_lefts))
        hit = self._memo.get(key)
        if hit is not None:
            self._counters["memo_hits"].inc()
            return hit
        self._counters["memo_misses"].inc()
        if need_lefts:
            # Algorithm 2 consumes left partial products; only l2r makes them.
            chosen = self._l2r
        elif self._forced is not None:
            chosen = self._forced
        else:
            chosen = min(self.candidates, key=lambda s: s.cost(key[0]))
        self._memo[key] = chosen
        return chosen

    def plan_batch(self, indices: np.ndarray, *, dedup: bool,
                   need_lefts: bool) -> BatchPlan:
        """Build the shared per-batch plan: schedule + one dedup pass."""
        indices = np.asarray(indices, dtype=np.int64)
        n = int(indices.size)
        schedule = self.schedule_for(n, need_lefts=need_lefts)
        with trace("tt.plan", schedule=schedule.label,
                   dedup="on" if dedup else "off"):
            if dedup and n:
                uniq, inverse = np.unique(indices, return_inverse=True)
                inverse = inverse.reshape(-1)
                if uniq.size == n:
                    uniq, inverse = indices, None
            else:
                uniq, inverse = indices, None
            decoded = self.shape.decode_indices(uniq)
            # Request traces see the dedup effectiveness per batch; the
            # aggregate tracer only folds counts, so this is trace-only.
            annotate_span(rows=n, unique=int(decoded.shape[1]))
        n_unique = int(decoded.shape[1])
        baseline = n * self._l2r.flops_per_row
        planned = n_unique * schedule.flops_per_row
        if n:
            self._counters["flops_planned"].inc(planned)
            self._counters["flops_saved"].inc(max(0, baseline - planned))
            self._counters["dedup_removed"].inc(n - n_unique)
        return BatchPlan(schedule, n, n_unique, decoded, inverse,
                         planned, baseline)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def execute(self, schedule: Schedule, decoded: np.ndarray,
                cores: list[np.ndarray], *, keep_lefts: bool = False,
                pooled: bool = False) -> tuple[np.ndarray, list[np.ndarray] | None]:
        """Contract the chain over pre-gathered per-core indices.

        ``cores`` are the raw core arrays (mode-first layout). Returns
        ``(rows, lefts)`` where ``lefts`` is ``None`` unless
        ``keep_lefts``. Pooled outputs are views into :attr:`pool` and are
        clobbered by the next pooled call.
        """
        dtype = cores[0].dtype

        def gather(k: int) -> np.ndarray:
            core = cores[k]
            idx = decoded[k]
            if pooled:
                buf = self.pool.take(("gather", k),
                                     (idx.size,) + core.shape[1:], core.dtype)
                return np.take(core, idx, axis=0, out=buf)
            return core[idx]

        return self.execute_chain(schedule, gather, decoded.shape[1], dtype,
                                  keep_lefts=keep_lefts, pooled=pooled)

    def execute_chain(self, schedule: Schedule, gather, n: int, dtype, *,
                      keep_lefts: bool = False, pooled: bool = False
                      ) -> tuple[np.ndarray, list[np.ndarray] | None]:
        """Like :meth:`execute` but with a caller-supplied ``gather(k)``
        (the grouped kernel concatenates slices across tables)."""
        if keep_lefts and schedule.kind != "l2r":
            raise ValueError(
                f"left partials require the l2r schedule, got {schedule.label}"
            )
        if n == 0:
            rows = np.zeros((0, self.shape.dim), dtype=dtype)
            return rows, ([] if keep_lefts else None)
        if schedule.kind == "l2r":
            rows, lefts = self._run_l2r(gather, n, dtype, keep_lefts, pooled)
        elif schedule.kind == "r2l":
            rows, lefts = self._run_r2l(gather, n, dtype, pooled), None
        else:
            rows, lefts = self._run_split(gather, n, dtype, schedule.split,
                                          pooled), None
        self._counters["flops_executed"].inc(n * schedule.flops_per_row)
        return rows, lefts

    # -- schedule bodies ------------------------------------------------ #

    def _run_l2r(self, gather, n: int, dtype, keep_lefts: bool, pooled: bool):
        col, ranks, d = self.shape.col_factors, self.shape.ranks, self.shape.d
        with trace("tt.forward.gather", core=0):
            first = gather(0)  # (n, 1, n_1, R_1)
        res = first.reshape(n, col[0], ranks[1])
        lefts = [res] if keep_lefts else None
        p = col[0]
        for k in range(1, d):
            with trace("tt.forward.gather", core=k):
                core = gather(k)  # (n, R_{k-1}, n_k, R_k)
            r_prev, r_next, nk = ranks[k], ranks[k + 1], col[k]
            with trace("tt.forward.gemm", core=k):
                rhs = core.reshape(n, r_prev, nk * r_next)
                if pooled:
                    out = self.pool.take(("l2r", k), (n, p, nk * r_next), dtype)
                    res = np.matmul(res, rhs, out=out)
                else:
                    res = np.matmul(res, rhs)
            p *= nk
            res = res.reshape(n, p, r_next)
            if keep_lefts:
                lefts.append(res)
        return res.reshape(n, self.shape.dim), lefts

    def _run_r2l(self, gather, n: int, dtype, pooled: bool):
        col, ranks, d = self.shape.col_factors, self.shape.ranks, self.shape.d
        with trace("tt.forward.gather", core=d - 1):
            last = gather(d - 1)  # (n, R_{d-1}, n_d, 1)
        res = last.reshape(n, ranks[d - 1], col[d - 1])
        q = col[d - 1]
        for k in range(d - 2, -1, -1):
            with trace("tt.forward.gather", core=k):
                core = gather(k)
            r_prev, r_next, nk = ranks[k], ranks[k + 1], col[k]
            with trace("tt.forward.gemm", core=k):
                lhs = core.reshape(n, r_prev * nk, r_next)
                if pooled:
                    out = self.pool.take(("r2l", k), (n, r_prev * nk, q), dtype)
                    res = np.matmul(lhs, res, out=out)
                else:
                    res = np.matmul(lhs, res)
            q *= nk
            res = res.reshape(n, r_prev, q)
        return res.reshape(n, self.shape.dim)

    def _run_split(self, gather, n: int, dtype, split: int, pooled: bool):
        col, ranks, d = self.shape.col_factors, self.shape.ranks, self.shape.d
        # Left sweep over cores 0..split-1 (plain l2r, shorter chain).
        with trace("tt.forward.gather", core=0):
            first = gather(0)
        left = first.reshape(n, col[0], ranks[1])
        p = col[0]
        for k in range(1, split):
            with trace("tt.forward.gather", core=k):
                core = gather(k)
            r_prev, r_next, nk = ranks[k], ranks[k + 1], col[k]
            with trace("tt.forward.gemm", core=k):
                rhs = core.reshape(n, r_prev, nk * r_next)
                if pooled:
                    out = self.pool.take(("sl", k), (n, p, nk * r_next), dtype)
                    left = np.matmul(left, rhs, out=out)
                else:
                    left = np.matmul(left, rhs)
            p *= nk
            left = left.reshape(n, p, r_next)
        # Right sweep over cores split..d-1.
        with trace("tt.forward.gather", core=d - 1):
            last = gather(d - 1)
        right = last.reshape(n, ranks[d - 1], col[d - 1])
        q = col[d - 1]
        for k in range(d - 2, split - 1, -1):
            with trace("tt.forward.gather", core=k):
                core = gather(k)
            r_prev, r_next, nk = ranks[k], ranks[k + 1], col[k]
            with trace("tt.forward.gemm", core=k):
                lhs = core.reshape(n, r_prev * nk, r_next)
                if pooled:
                    out = self.pool.take(("sr", k), (n, r_prev * nk, q), dtype)
                    right = np.matmul(lhs, right, out=out)
                else:
                    right = np.matmul(lhs, right)
            q *= nk
            right = right.reshape(n, r_prev, q)
        # Combine: (n, P_left, R_split) @ (n, R_split, Q_right).
        with trace("tt.forward.combine", split=split):
            if pooled:
                out = self.pool.take(("combine",), (n, p, q), dtype)
                res = np.matmul(left, right, out=out)
            else:
                res = np.matmul(left, right)
        return res.reshape(n, self.shape.dim)
