"""TT shape and rank bookkeeping (paper §2, Eq. 2; Table 2 arithmetic).

A TT-compressed ``M x N`` embedding table is described by

- row factors ``(m_1, ..., m_d)`` with ``prod(m_k) >= M`` (padding rows
  beyond ``M`` is allowed — they are never indexed),
- column factors ``(n_1, ..., n_d)`` with ``prod(n_k) == N``,
- ranks ``(R_0=1, R_1, ..., R_{d-1}, R_d=1)``.

Core ``k`` (0-based) then has the paper shape
``(R_k, m_{k+1}, n_{k+1}, R_{k+1})``.

Implementation note: :class:`repro.tt.embedding_bag.TTEmbeddingBag` stores
each core with the *mode index first* — ``(m_k, R_{k-1}, n_k, R_k)`` — so
that a row lookup is a single contiguous NumPy gather ``core[i_k]`` and the
backward scatter is one ``np.add.at``. :meth:`TTShape.core_shape` /
:meth:`TTShape.paper_core_shape` give both layouts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.utils.factorization import factorize_into, suggested_tt_shapes

__all__ = ["TTShape"]


@dataclass(frozen=True)
class TTShape:
    """Immutable description of one TT-compressed embedding table."""

    num_rows: int
    dim: int
    row_factors: tuple[int, ...]
    col_factors: tuple[int, ...]
    ranks: tuple[int, ...]  # length d+1, ranks[0] == ranks[-1] == 1
    _radix: tuple[int, ...] = field(init=False, repr=False, compare=False, default=())

    def __post_init__(self):
        d = len(self.row_factors)
        if d < 2:
            raise ValueError(f"TT needs at least 2 cores, got row_factors={self.row_factors}")
        if len(self.col_factors) != d:
            raise ValueError(
                f"row_factors ({d}) and col_factors ({len(self.col_factors)}) "
                "must have the same length"
            )
        if len(self.ranks) != d + 1:
            raise ValueError(f"ranks must have length d+1={d + 1}, got {len(self.ranks)}")
        if self.ranks[0] != 1 or self.ranks[-1] != 1:
            raise ValueError(f"boundary ranks must be 1, got {self.ranks}")
        if any(r < 1 for r in self.ranks):
            raise ValueError(f"ranks must be >= 1, got {self.ranks}")
        if any(f < 1 for f in self.row_factors + self.col_factors):
            raise ValueError("all factors must be >= 1")
        if math.prod(self.row_factors) < self.num_rows:
            raise ValueError(
                f"prod(row_factors)={math.prod(self.row_factors)} is smaller than "
                f"num_rows={self.num_rows}"
            )
        if math.prod(self.col_factors) != self.dim:
            raise ValueError(
                f"prod(col_factors)={math.prod(self.col_factors)} must equal dim={self.dim}"
            )
        # Mixed-radix weights for decoding a row index into per-core indices
        # (i_1 most significant, matching paper §3.1).
        radix = []
        rest = math.prod(self.row_factors)
        for m in self.row_factors:
            rest //= m
            radix.append(rest)
        object.__setattr__(self, "_radix", tuple(radix))

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def suggested(cls, num_rows: int, dim: int, *, d: int = 3, rank: int = 32) -> TTShape:
        """Auto-factorize a table like the paper does (Table 2 style).

        Row factors are balanced with round-up padding; column factors split
        ``dim`` exactly; all internal ranks equal ``rank`` (clipped to the
        maximum useful rank at each boundary).
        """
        row_factors = tuple(suggested_tt_shapes(num_rows, d))
        col_factors = tuple(sorted(factorize_into(dim, d)))
        return cls.with_uniform_rank(num_rows, dim, row_factors, col_factors, rank)

    @classmethod
    def with_uniform_rank(cls, num_rows: int, dim: int, row_factors: tuple[int, ...],
                          col_factors: tuple[int, ...], rank: int) -> TTShape:
        """Build a shape whose internal ranks are ``min(rank, max useful)``.

        A rank larger than the product of mode sizes on either side of the
        boundary adds parameters without expressive power, so it is clipped
        (standard TT practice; also keeps TT-SVD exact-rank checks sane).
        """
        d = len(row_factors)
        ranks = [1]
        left = 1
        total = math.prod(row_factors) * math.prod(col_factors)
        for k in range(d - 1):
            left *= row_factors[k] * col_factors[k]
            right = total // left
            ranks.append(max(1, min(rank, left, right)))
        ranks.append(1)
        return cls(num_rows, dim, tuple(row_factors), tuple(col_factors), tuple(ranks))

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #

    @property
    def d(self) -> int:
        """Number of TT cores."""
        return len(self.row_factors)

    @property
    def padded_rows(self) -> int:
        """Row capacity after padding: ``prod(row_factors) >= num_rows``."""
        return math.prod(self.row_factors)

    def core_shape(self, k: int) -> tuple[int, int, int, int]:
        """Mode-first storage layout of core ``k``: ``(m_k, R_{k-1}, n_k, R_k)``."""
        return (self.row_factors[k], self.ranks[k], self.col_factors[k], self.ranks[k + 1])

    def paper_core_shape(self, k: int) -> tuple[int, int, int, int]:
        """Paper layout of core ``k``: ``(R_{k-1}, m_k, n_k, R_k)`` (Eq. 2)."""
        return (self.ranks[k], self.row_factors[k], self.col_factors[k], self.ranks[k + 1])

    def num_params(self) -> int:
        """Total TT parameter count (paper Table 2, '# of TT Parameters')."""
        return sum(math.prod(self.core_shape(k)) for k in range(self.d))

    def uncompressed_params(self) -> int:
        """Parameters of the dense table being replaced (true rows, no padding)."""
        return self.num_rows * self.dim

    def compression_ratio(self) -> float:
        """Memory reduction factor (paper Table 2, 'Memory Reduction')."""
        return self.uncompressed_params() / self.num_params()

    # ------------------------------------------------------------------ #
    # Index decoding
    # ------------------------------------------------------------------ #

    def decode_indices(self, indices: np.ndarray) -> np.ndarray:
        """Decode flat row indices into per-core indices.

        Returns an ``(d, n)`` int64 array where row ``k`` holds ``i_k`` for
        every input index: ``i = sum_k i_k * prod_{j>k} m_j`` (paper §3.1).
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.padded_rows):
            raise IndexError(
                f"row index out of range [0, {self.padded_rows}): "
                f"min={indices.min()}, max={indices.max()}"
            )
        out = np.empty((self.d, indices.size), dtype=np.int64)
        rem = indices
        for k, w in enumerate(self._radix):
            out[k] = rem // w
            rem = rem % w
        return out

    def encode_indices(self, per_core: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`decode_indices` (for tests and tooling)."""
        per_core = np.asarray(per_core, dtype=np.int64)
        if per_core.shape[0] != self.d:
            raise ValueError(f"expected {self.d} index rows, got {per_core.shape[0]}")
        weights = np.asarray(self._radix, dtype=np.int64)
        return (per_core * weights[:, None]).sum(axis=0)

    def describe(self) -> str:
        """One-line human-readable summary (used by the bench harness)."""
        cores = " x ".join(str(self.paper_core_shape(k)) for k in range(self.d))
        return (
            f"{self.num_rows}x{self.dim} -> {cores}, params={self.num_params()}, "
            f"compression={self.compression_ratio():.0f}x"
        )
