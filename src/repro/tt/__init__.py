"""Tensor-Train compressed embeddings (the paper's core contribution).

Public surface:

- :class:`~repro.tt.shapes.TTShape` — shape/rank bookkeeping and
  compression-ratio arithmetic (paper Table 2).
- :class:`~repro.tt.embedding_bag.TTEmbeddingBag` — the TT-EmbeddingBag
  operator (paper Algorithms 1 & 2) with bag pooling.
- :func:`~repro.tt.decomposition.tt_svd` /
  :func:`~repro.tt.decomposition.tt_reconstruct` — TT-SVD of a dense
  matrix and exact reconstruction from cores.
- :mod:`~repro.tt.initialization` — core initializers including the
  sampled-Gaussian scheme (paper Algorithm 3, §3.2).
- :class:`~repro.tt.t3nsor.T3nsorEmbeddingBag` — the decompress-on-the-fly
  SOTA baseline the paper compares against (Fig. 8).
- :mod:`~repro.tt.planner` — per-batch execution planning: dedup,
  contraction-schedule selection by FLOP/bytes counting, pooled buffers
  (docs/KERNELS.md).
"""

from repro.tt.decomposition import tt_reconstruct, tt_svd
from repro.tt.embedding_bag import TTEmbeddingBag
from repro.tt.initialization import (
    gaussian_initializer,
    kl_uniform_gaussian,
    optimal_gaussian_for_uniform,
    sampled_gaussian_cores,
    tt_core_initializer,
)
from repro.tt.planner import (
    BatchPlan,
    BufferPool,
    ExecutionPlanner,
    Schedule,
    candidate_schedules,
    schedule_cost,
)
from repro.tt.shapes import TTShape
from repro.tt.t3nsor import T3nsorEmbeddingBag

__all__ = [
    "TTShape",
    "TTEmbeddingBag",
    "T3nsorEmbeddingBag",
    "BatchPlan",
    "BufferPool",
    "ExecutionPlanner",
    "Schedule",
    "candidate_schedules",
    "schedule_cost",
    "tt_svd",
    "tt_reconstruct",
    "tt_core_initializer",
    "sampled_gaussian_cores",
    "gaussian_initializer",
    "kl_uniform_gaussian",
    "optimal_gaussian_for_uniform",
]
