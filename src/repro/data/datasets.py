"""Finite, epoch-style datasets materialised from a sample stream.

Criteo training is epoch-based ("we train TT-Rec for a single epoch using
all the data samples", §5); the synthetic generator streams forever. This
module bridges the two: :func:`materialize` draws a fixed corpus from any
batch stream, and :class:`FixedDataset` replays it in shuffled epochs with
a deterministic train/test split — enabling exact epoch semantics,
fixed validation sets, and memorisation sanity checks.
"""

from __future__ import annotations

import numpy as np

from repro.data.batching import Batch, make_offsets
from repro.utils.seeding import as_rng

__all__ = ["FixedDataset", "materialize"]


class FixedDataset:
    """An in-memory corpus of CTR samples with epoch iteration.

    Samples are stored row-wise (dense matrix, per-table index lists with
    per-sample bag sizes, labels) so arbitrary subsets/permutations can be
    re-batched exactly.
    """

    def __init__(self, dense: np.ndarray, table_indices: list[np.ndarray],
                 table_offsets: list[np.ndarray], labels: np.ndarray):
        self.dense = np.asarray(dense, dtype=np.float64)
        n = self.dense.shape[0]
        if labels.shape[0] != n:
            raise ValueError("labels and dense row counts differ")
        for t, (idx, off) in enumerate(zip(table_indices, table_offsets)):
            if off.shape[0] != n + 1:
                raise ValueError(f"table {t}: offsets must have {n + 1} entries")
            if off[-1] != idx.shape[0]:
                raise ValueError(f"table {t}: offsets[-1] != len(indices)")
        self.table_indices = [np.asarray(i, dtype=np.int64) for i in table_indices]
        self.table_offsets = [np.asarray(o, dtype=np.int64) for o in table_offsets]
        self.labels = np.asarray(labels, dtype=np.float64)

    def __len__(self) -> int:
        return int(self.dense.shape[0])

    @property
    def num_tables(self) -> int:
        return len(self.table_indices)

    # ------------------------------------------------------------------ #

    def subset(self, rows: np.ndarray) -> "FixedDataset":
        """New dataset holding the given sample rows (any order, repeats ok)."""
        rows = np.asarray(rows, dtype=np.int64)
        table_indices, table_offsets = [], []
        for idx, off in zip(self.table_indices, self.table_offsets):
            counts = np.diff(off)[rows]
            new_off = make_offsets(counts)
            gathered = np.concatenate(
                [idx[off[r]:off[r + 1]] for r in rows]
            ) if rows.size else np.empty(0, dtype=np.int64)
            table_indices.append(gathered)
            table_offsets.append(new_off)
        return FixedDataset(self.dense[rows], table_indices, table_offsets,
                            self.labels[rows])

    def split(self, test_fraction: float, *, rng=0
              ) -> tuple["FixedDataset", "FixedDataset"]:
        """Deterministic shuffled (train, test) split."""
        if not (0.0 < test_fraction < 1.0):
            raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
        order = as_rng(rng).permutation(len(self))
        n_test = max(1, int(round(test_fraction * len(self))))
        return self.subset(order[n_test:]), self.subset(order[:n_test])

    def batches(self, batch_size: int, *, shuffle: bool = True, rng=0,
                drop_last: bool = False):
        """One epoch of mini-batches."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        order = (as_rng(rng).permutation(len(self)) if shuffle
                 else np.arange(len(self)))
        for start in range(0, len(self), batch_size):
            rows = order[start:start + batch_size]
            if drop_last and rows.size < batch_size:
                break
            sub = self.subset(rows)
            yield Batch(
                dense=sub.dense,
                sparse=list(zip(sub.table_indices, sub.table_offsets)),
                labels=sub.labels,
            )

    def epochs(self, batch_size: int, num_epochs: int, *, rng=0):
        """Stream ``num_epochs`` shuffled passes (fresh shuffle per epoch)."""
        rng = as_rng(rng)
        for _ in range(num_epochs):
            yield from self.batches(batch_size, shuffle=True, rng=rng)


def materialize(stream_batches, num_samples: int) -> FixedDataset:
    """Collect a fixed corpus from an iterable of :class:`Batch` objects.

    Consumes batches until ``num_samples`` rows are gathered (the final
    batch is truncated as needed).
    """
    if num_samples < 1:
        raise ValueError(f"num_samples must be >= 1, got {num_samples}")
    dense_parts, label_parts = [], []
    idx_parts: list[list[np.ndarray]] | None = None
    count_parts: list[list[np.ndarray]] | None = None
    collected = 0
    for batch in stream_batches:
        take = min(batch.size, num_samples - collected)
        dense_parts.append(batch.dense[:take])
        label_parts.append(batch.labels[:take])
        if idx_parts is None:
            idx_parts = [[] for _ in batch.sparse]
            count_parts = [[] for _ in batch.sparse]
        for t, (idx, off) in enumerate(batch.sparse):
            idx_parts[t].append(idx[:off[take]])
            count_parts[t].append(np.diff(off)[:take])
        collected += take
        if collected >= num_samples:
            break
    if collected < num_samples:
        raise ValueError(
            f"stream exhausted after {collected} samples, needed {num_samples}"
        )
    assert idx_parts is not None and count_parts is not None
    table_indices = [np.concatenate(parts) for parts in idx_parts]
    table_offsets = [make_offsets(np.concatenate(parts)) for parts in count_parts]
    return FixedDataset(np.vstack(dense_parts), table_indices, table_offsets,
                        np.concatenate(label_parts))
