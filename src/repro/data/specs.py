"""Exact dataset specifications for Criteo Kaggle and Terabyte.

Cardinalities are those produced by the MLPerf-DLRM reference preprocessing
(no ``max-ind-range`` hashing). The seven largest Kaggle tables match paper
Table 2 exactly: 10131227, 8351593, 7046547, 5461306, 2202608, 286181,
142572. Memory-accounting experiments (Table 2, Fig. 5, the 117x/112x
headline numbers) run on these exact specs; training experiments run on
:meth:`DatasetSpec.scaled` copies sized for CPU.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DatasetSpec", "KAGGLE", "TERABYTE", "PAPER_KAGGLE_TT_SHAPES"]


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of a Criteo-style CTR dataset."""

    name: str
    table_sizes: tuple[int, ...]
    num_dense: int = 13
    num_samples: int = 0  # informational; synthetic data is unbounded
    emb_dim: int = 16

    def __post_init__(self):
        if any(s < 1 for s in self.table_sizes):
            raise ValueError("table sizes must be positive")

    @property
    def num_tables(self) -> int:
        return len(self.table_sizes)

    def total_rows(self) -> int:
        return sum(self.table_sizes)

    def embedding_bytes(self, dtype_bytes: int = 4) -> int:
        """Total dense embedding storage (the paper's fp32 accounting)."""
        return self.total_rows() * self.emb_dim * dtype_bytes

    def largest(self, n: int) -> list[int]:
        """Indices of the ``n`` largest tables, ascending index order."""
        order = sorted(range(self.num_tables), key=lambda i: (-self.table_sizes[i], i))
        return sorted(order[:n])

    def scaled(self, factor: float, *, min_rows: int = 4,
               name_suffix: str = "-scaled") -> DatasetSpec:
        """Proportionally shrink every table (CPU-trainable replica).

        Keeps the *relative* size distribution so "compress the N largest
        tables" selects the same tables as in the full spec.
        """
        if factor <= 0:
            raise ValueError(f"factor must be > 0, got {factor}")
        sizes = tuple(max(min_rows, int(round(s * factor))) for s in self.table_sizes)
        return DatasetSpec(
            name=self.name + name_suffix,
            table_sizes=sizes,
            num_dense=self.num_dense,
            num_samples=self.num_samples,
            emb_dim=self.emb_dim,
        )


# Criteo Kaggle Display Advertising Challenge: 7 days, ~45.8M samples.
KAGGLE = DatasetSpec(
    name="kaggle",
    table_sizes=(
        1460, 583, 10131227, 2202608, 305, 24, 12517, 633, 3, 93145,
        5683, 8351593, 3194, 27, 14992, 5461306, 10, 5652, 2173, 4,
        7046547, 18, 15, 286181, 105, 142572,
    ),
    num_samples=45_840_617,
)

# Criteo Terabyte Click Logs: 24 days, ~4.37B samples (paper downsamples
# negatives by 0.875 per the MLPerf benchmark rules).
TERABYTE = DatasetSpec(
    name="terabyte",
    table_sizes=(
        39884406, 39043, 17289, 7420, 20263, 3, 7120, 1543, 63, 38532951,
        2953546, 403346, 10, 2208, 11938, 155, 4, 976, 14, 39979771,
        25641295, 39664984, 585935, 12972, 108, 36,
    ),
    num_samples=4_373_472_329,
)

# Paper Table 2: the authors' TT factorizations of Kaggle's 7 largest
# tables (row factors and column factors for emb dim 16). Keyed by row
# count. Using these reproduces Table 2's parameter counts exactly.
PAPER_KAGGLE_TT_SHAPES: dict[int, tuple[tuple[int, int, int], tuple[int, int, int]]] = {
    10131227: ((200, 220, 250), (2, 2, 4)),
    8351593: ((200, 200, 209), (2, 2, 4)),
    7046547: ((200, 200, 200), (2, 2, 4)),
    5461306: ((166, 175, 188), (2, 2, 4)),
    2202608: ((125, 130, 136), (2, 2, 4)),
    286181: ((53, 72, 75), (2, 2, 4)),
    142572: ((50, 52, 55), (2, 2, 4)),
}
