"""Datasets: exact Criteo specs, Zipf samplers, synthetic CTR generation.

Real Criteo Kaggle/Terabyte click logs cannot be redistributed or fetched
offline; :mod:`repro.data.synthetic` generates Criteo-*shaped* data (same
feature layout, exact table cardinalities, Zipf-distributed categorical
traffic, a planted logistic ground truth) and :mod:`repro.data.criteo`
parses the real TSV files if the user supplies them.
"""

from repro.data.batching import Batch, make_offsets
from repro.data.criteo import CriteoTSVReader, scan_criteo_tsv
from repro.data.datasets import FixedDataset, materialize
from repro.data.specs import (
    KAGGLE,
    PAPER_KAGGLE_TT_SHAPES,
    TERABYTE,
    DatasetSpec,
)
from repro.data.synthetic import SyntheticCTRDataset
from repro.data.zipf import ZipfSampler

__all__ = [
    "DatasetSpec",
    "KAGGLE",
    "TERABYTE",
    "PAPER_KAGGLE_TT_SHAPES",
    "ZipfSampler",
    "SyntheticCTRDataset",
    "Batch",
    "make_offsets",
    "CriteoTSVReader",
    "scan_criteo_tsv",
    "FixedDataset",
    "materialize",
]
