"""MLPerf-DLRM-style preprocessing for raw Criteo TSV logs.

The paper's experimental setup (§5) relies on the MLPerf reference
preprocessing: the last day is held out for testing, negative training
samples are downsampled (Terabyte uses a keep factor derived from the
benchmark's ``--data-sub-sample-rate=0.875``), and each categorical
feature's raw 32-bit hashes are re-indexed into a dense vocabulary
(optionally frequency-thresholded, which is how cardinalities like
Table 2's 10,131,227 arise). This module implements that pipeline as
streaming passes over the TSV files, producing a :class:`Preprocessor`
that converts raw samples into model-ready indices and a
:class:`~repro.data.specs.DatasetSpec` describing the result.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.data.batching import Batch, make_offsets
from repro.data.criteo import _NUM_CAT, _NUM_INT, parse_criteo_line
from repro.data.specs import DatasetSpec
from repro.utils.seeding import as_rng

__all__ = ["build_vocabularies", "Preprocessor", "downsample_negatives"]


def build_vocabularies(paths: list[str | os.PathLike], *,
                       min_frequency: int = 1,
                       max_samples: int | None = None
                       ) -> list[dict[int, int]]:
    """One pass over the training files building per-feature vocabularies.

    Returns 26 dicts mapping raw hash value -> dense index. Values seen
    fewer than ``min_frequency`` times map to index 0 (the shared
    out-of-vocabulary row), matching the reference preprocessing's
    frequency-threshold option; index 0 is always reserved for OOV/missing.
    """
    if min_frequency < 1:
        raise ValueError(f"min_frequency must be >= 1, got {min_frequency}")
    counts: list[dict[int, int]] = [{} for _ in range(_NUM_CAT)]
    seen = 0
    for path in paths:
        with open(os.fspath(path), "r", encoding="ascii") as fh:
            for line in fh:
                if not line.strip():
                    continue
                parts = line.rstrip("\n").split("\t")
                if len(parts) != 1 + _NUM_INT + _NUM_CAT:
                    raise ValueError(
                        f"{path}: expected {1 + _NUM_INT + _NUM_CAT} fields, "
                        f"got {len(parts)}"
                    )
                for i, raw in enumerate(parts[1 + _NUM_INT:]):
                    if raw:
                        key = int(raw, 16)
                        counts[i][key] = counts[i].get(key, 0) + 1
                seen += 1
                if max_samples is not None and seen >= max_samples:
                    break
        if max_samples is not None and seen >= max_samples:
            break
    vocabs: list[dict[int, int]] = []
    for table in counts:
        vocab: dict[int, int] = {}
        next_idx = 1  # 0 reserved for OOV / missing
        for key in sorted(table):  # sorted for determinism
            if table[key] >= min_frequency:
                vocab[key] = next_idx
                next_idx += 1
        vocabs.append(vocab)
    return vocabs


def downsample_negatives(labels: np.ndarray, keep_rate: float, *,
                         rng=0) -> np.ndarray:
    """Boolean keep-mask implementing MLPerf's negative downsampling.

    Every positive is kept; each negative survives with probability
    ``keep_rate``. The paper "downsize[s] the negative training samples by
    0.875" for Terabyte — i.e. ``keep_rate = 0.125``... or, under the
    benchmark's own flag semantics (``--data-sub-sample-rate=0.875`` drops
    87.5% of negatives), the same thing. Pass the keep rate explicitly.
    """
    if not (0.0 < keep_rate <= 1.0):
        raise ValueError(f"keep_rate must be in (0, 1], got {keep_rate}")
    labels = np.asarray(labels, dtype=np.float64).reshape(-1)
    rng = as_rng(rng)
    keep = labels > 0.5
    negatives = ~keep
    keep[negatives] = rng.random(int(negatives.sum())) < keep_rate
    return keep


@dataclass
class Preprocessor:
    """Frozen preprocessing state: vocabularies + derived spec."""

    vocabs: list[dict[int, int]]
    name: str = "criteo-preprocessed"

    def spec(self) -> DatasetSpec:
        """The table layout this preprocessing induces (+1 for the OOV row)."""
        return DatasetSpec(
            name=self.name,
            table_sizes=tuple(len(v) + 1 for v in self.vocabs),
        )

    def encode_sample(self, label: float, dense: np.ndarray,
                      raw_cats: np.ndarray) -> tuple[float, np.ndarray, np.ndarray]:
        """Map one parsed sample's raw hash values into dense indices."""
        cats = np.empty(_NUM_CAT, dtype=np.int64)
        for i, raw in enumerate(raw_cats):
            cats[i] = self.vocabs[i].get(int(raw), 0)
        return label, dense, cats

    def batches(self, path: str | os.PathLike, batch_size: int, *,
                negative_keep_rate: float | None = None, rng=0,
                max_samples: int | None = None):
        """Stream model-ready batches from a raw TSV file.

        Applies vocabulary encoding and (optionally) negative
        downsampling. Raw hashes are parsed with the same rules as
        :class:`~repro.data.criteo.CriteoTSVReader` except indices come
        from the vocabularies instead of modulo hashing.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        rng = as_rng(rng)
        # Parse with identity-sized tables so parse_criteo_line keeps raw
        # hash values intact (modulo by a huge number is a no-op).
        huge = tuple([1 << 62] * _NUM_CAT)
        labels: list[float] = []
        dense_rows: list[np.ndarray] = []
        cat_rows: list[np.ndarray] = []
        seen = 0
        with open(os.fspath(path), "r", encoding="ascii") as fh:
            for line in fh:
                if not line.strip():
                    continue
                label, dense, raw_cats = parse_criteo_line(line, huge)
                seen += 1
                if (negative_keep_rate is not None and label < 0.5
                        and rng.random() >= negative_keep_rate):
                    continue
                label, dense, cats = self.encode_sample(label, dense, raw_cats)
                labels.append(label)
                dense_rows.append(dense)
                cat_rows.append(cats)
                if len(labels) == batch_size:
                    yield self._assemble(labels, dense_rows, cat_rows)
                    labels, dense_rows, cat_rows = [], [], []
                if max_samples is not None and seen >= max_samples:
                    break
        if labels:
            yield self._assemble(labels, dense_rows, cat_rows)

    def _assemble(self, labels, dense_rows, cat_rows) -> Batch:
        b = len(labels)
        cats = np.stack(cat_rows)
        ones = np.ones(b, dtype=np.int64)
        sparse = [
            (cats[:, t], make_offsets(ones)) for t in range(_NUM_CAT)
        ]
        return Batch(dense=np.stack(dense_rows), sparse=sparse,
                     labels=np.asarray(labels, dtype=np.float64))
