"""Bounded Zipf sampling for categorical feature traffic.

Industry recommendation traffic follows a Power/Zipf law (paper §3.1,
citing Wu et al. 2020): a small set of rows receives most accesses. The
sampler here draws from ``P(rank r) ∝ 1/(r+1)^s`` over a bounded support
``[0, n)``, with an optional permutation so the hot rows are not simply the
lowest ids (matching real hashed categorical ids).

The class also exposes the analytics the cache experiments rely on:
``top_k_mass(k)`` — the fraction of traffic captured by the ``k`` hottest
rows — which is the *expected cache hit rate* of a perfectly-warmed
k-row LFU cache.
"""

from __future__ import annotations

import numpy as np

from repro.utils.seeding import as_rng

__all__ = ["ZipfSampler"]


class ZipfSampler:
    """Draw row ids from a bounded Zipf distribution.

    Parameters
    ----------
    n:
        Support size (number of table rows).
    s:
        Zipf exponent; 0 = uniform, ~1.05 is typical of the large Criteo
        tables.
    permute:
        Shuffle the rank-to-id mapping so hot ids are scattered.
    rng:
        Seed or generator for both the permutation and the draws.
    """

    def __init__(self, n: int, s: float = 1.05, *, permute: bool = True,
                 rng: int | None | np.random.Generator = None):
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if s < 0:
            raise ValueError(f"s must be >= 0, got {s}")
        self.n = n
        self.s = s
        self._rng = as_rng(rng)
        weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), s)
        self._pmf_by_rank = weights / weights.sum()
        self._cdf = np.cumsum(self._pmf_by_rank)
        self._cdf[-1] = 1.0  # guard against float drift at the boundary
        if permute:
            self._rank_to_id = self._rng.permutation(n).astype(np.int64)
        else:
            self._rank_to_id = np.arange(n, dtype=np.int64)

    def sample(self, size: int) -> np.ndarray:
        """Draw ``size`` ids (inverse-CDF; O(size log n))."""
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        u = self._rng.random(size)
        ranks = np.searchsorted(self._cdf, u, side="right")
        return self._rank_to_id[ranks]

    def pmf(self) -> np.ndarray:
        """Probability of each *id* (permutation applied)."""
        out = np.empty(self.n)
        out[self._rank_to_id] = self._pmf_by_rank
        return out

    def hottest(self, k: int) -> np.ndarray:
        """The ``k`` most probable ids, hottest first."""
        k = min(max(k, 0), self.n)
        return self._rank_to_id[:k]

    def top_k_mass(self, k: int) -> float:
        """Traffic fraction captured by the ``k`` hottest rows.

        Equals the steady-state hit rate of a k-row cache holding exactly
        the hottest rows — the analytic backbone of Fig. 10(b)/Fig. 12.
        """
        k = min(max(k, 0), self.n)
        return float(self._pmf_by_rank[:k].sum())

    def rank_for_mass(self, mass: float) -> int:
        """Smallest ``k`` with ``top_k_mass(k) >= mass`` (inverse of above)."""
        if not (0.0 <= mass <= 1.0):
            raise ValueError(f"mass must be in [0, 1], got {mass}")
        return int(np.searchsorted(self._cdf, mass, side="left")) + 1

    def drift(self, fraction: float) -> None:
        """Shift the hot set: swap a fraction of the rank-to-id mapping.

        Models the slow non-stationarity of production traffic (new items
        becoming popular) that motivates the paper's *semi-dynamic* cache
        refresh (§4.2, Fig. 4's "depending on the phase behavior"). A
        ``fraction`` of ranks (biased toward the head, where it matters)
        exchange their ids with uniformly random ranks.
        """
        if not (0.0 <= fraction <= 1.0):
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        n_swaps = min(int(round(fraction * self.n)), self.n // 2)
        if n_swaps == 0:
            return
        # Head-biased choice of ranks to demote: sample by current pmf.
        demoted = self._rng.choice(self.n, size=n_swaps, replace=False,
                                   p=self._pmf_by_rank)
        # Partners come from the complement so the two sets are disjoint
        # and the vectorized pairwise swap stays a permutation.
        mask = np.ones(self.n, dtype=bool)
        mask[demoted] = False
        pool = np.flatnonzero(mask)
        promoted = self._rng.choice(pool, size=n_swaps, replace=False)
        tmp = self._rank_to_id[demoted].copy()
        self._rank_to_id[demoted] = self._rank_to_id[promoted]
        self._rank_to_id[promoted] = tmp
