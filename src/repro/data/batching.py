"""Mini-batch containers and CSR helpers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Batch", "make_offsets"]


def make_offsets(counts: np.ndarray) -> np.ndarray:
    """CSR offsets array for per-bag index counts: ``[0, c0, c0+c1, ...]``."""
    counts = np.asarray(counts, dtype=np.int64)
    if counts.ndim != 1:
        raise ValueError(f"counts must be 1-D, got shape {counts.shape}")
    if counts.size and counts.min() < 0:
        raise ValueError("counts must be non-negative")
    offsets = np.empty(counts.size + 1, dtype=np.int64)
    offsets[0] = 0
    np.cumsum(counts, out=offsets[1:])
    return offsets


@dataclass
class Batch:
    """One training mini-batch in DLRM layout.

    Attributes
    ----------
    dense:
        ``(B, num_dense)`` continuous features.
    sparse:
        Per-table ``(indices, offsets)`` CSR bag descriptions, each with
        ``B`` bags (paper §4.1's input format).
    labels:
        ``(B,)`` binary click labels.
    per_sample_weights:
        Optional per-table weights aligned with each table's ``indices``.
    """

    dense: np.ndarray
    sparse: list[tuple[np.ndarray, np.ndarray]]
    labels: np.ndarray
    per_sample_weights: list[np.ndarray] | None = None

    def __post_init__(self):
        b = self.dense.shape[0]
        if self.labels.shape[0] != b:
            raise ValueError(
                f"labels ({self.labels.shape[0]}) and dense ({b}) batch sizes differ"
            )
        for t, (indices, offsets) in enumerate(self.sparse):
            if offsets.shape[0] != b + 1:
                raise ValueError(
                    f"table {t}: offsets has {offsets.shape[0] - 1} bags, expected {b}"
                )
            if offsets[-1] != indices.shape[0]:
                raise ValueError(f"table {t}: offsets[-1] != len(indices)")

    @property
    def size(self) -> int:
        return int(self.dense.shape[0])

    def num_lookups(self) -> int:
        """Total embedding lookups across tables (pooling-factor metric)."""
        return int(sum(idx.shape[0] for idx, _ in self.sparse))
