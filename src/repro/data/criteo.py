"""Parser for the real Criteo TSV click logs (Kaggle / Terabyte format).

Each line is tab-separated::

    <label> <I1> ... <I13> <C1> ... <C26>

where ``I*`` are integer counters (possibly empty) and ``C*`` are 8-hex-char
categorical hashes (possibly empty). This reader applies the same
preprocessing as the MLPerf-DLRM reference: missing integers become 0,
integers are transformed with ``log(x+1)`` (negatives clamped to 0), and
categorical hashes are mapped into each table's index range by modulo.

The reader streams — it never materialises the dataset — so it works on the
full Terabyte logs if a user supplies them. All repository experiments use
:mod:`repro.data.synthetic` instead; this module exists so the pipeline is
runnable end-to-end on the real data without code changes.
"""

from __future__ import annotations

import os
from collections.abc import Iterator

import numpy as np

from repro.data.batching import Batch, make_offsets
from repro.data.specs import DatasetSpec

__all__ = ["CriteoTSVReader", "parse_criteo_line", "scan_criteo_tsv", "ScanResult"]

_NUM_INT = 13
_NUM_CAT = 26


def parse_criteo_line(line: str, table_sizes: tuple[int, ...]) -> tuple[float, np.ndarray, np.ndarray]:
    """Parse one TSV line into ``(label, dense[13], cat_indices[26])``."""
    parts = line.rstrip("\n").split("\t")
    expected = 1 + _NUM_INT + _NUM_CAT
    if len(parts) != expected:
        raise ValueError(f"expected {expected} TSV fields, got {len(parts)}")
    label = float(parts[0])
    dense = np.zeros(_NUM_INT, dtype=np.float64)
    for i, raw in enumerate(parts[1:1 + _NUM_INT]):
        if raw:
            v = max(int(raw), 0)
            dense[i] = np.log1p(v)
    cats = np.zeros(_NUM_CAT, dtype=np.int64)
    for i, raw in enumerate(parts[1 + _NUM_INT:]):
        if raw:
            cats[i] = int(raw, 16) % table_sizes[i]
    return label, dense, cats


class ScanResult:
    """Vocabulary statistics of one raw Criteo file (see :func:`scan_criteo_tsv`)."""

    def __init__(self, num_samples: int, positives: int,
                 tables: list["OpenAddressingHashTable"]):
        self.num_samples = num_samples
        self.positives = positives
        self._tables = tables

    @property
    def click_rate(self) -> float:
        return self.positives / self.num_samples if self.num_samples else 0.0

    def cardinalities(self) -> tuple[int, ...]:
        """Distinct categorical values per feature — the table sizes the
        MLPerf preprocessing derives (this is how the Table 2 row counts
        like 10131227 come about)."""
        return tuple(len(t) for t in self._tables)

    def top_values(self, feature: int, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Most frequent raw hash values of one categorical feature —
        directly usable to pre-warm a TT-Rec cache."""
        return self._tables[feature].top_k(k)


def scan_criteo_tsv(path: str | os.PathLike, *,
                    max_samples: int | None = None) -> ScanResult:
    """One streaming pass over a raw Criteo TSV collecting vocabularies.

    Counts distinct values and access frequencies per categorical feature
    (via the same open-addressing hash tables the TT-Rec cache uses), plus
    the label base rate. This is the preprocessing step that produces the
    dataset specs in :mod:`repro.data.specs` when run over the full logs.
    """
    from repro.cache.hashtable import OpenAddressingHashTable

    tables = [OpenAddressingHashTable(1024) for _ in range(_NUM_CAT)]
    num_samples = 0
    positives = 0
    with open(os.fspath(path), "r", encoding="ascii") as fh:
        for line in fh:
            if not line.strip():
                continue
            parts = line.rstrip("\n").split("\t")
            if len(parts) != 1 + _NUM_INT + _NUM_CAT:
                raise ValueError(
                    f"line {num_samples + 1}: expected "
                    f"{1 + _NUM_INT + _NUM_CAT} fields, got {len(parts)}"
                )
            num_samples += 1
            positives += int(float(parts[0]) > 0.5)
            for i, raw in enumerate(parts[1 + _NUM_INT:]):
                if raw:
                    tables[i].add(np.array([int(raw, 16)], dtype=np.int64))
            if max_samples is not None and num_samples >= max_samples:
                break
    return ScanResult(num_samples, positives, tables)


class CriteoTSVReader:
    """Streaming batch iterator over a Criteo-format TSV file."""

    def __init__(self, path: str | os.PathLike, spec: DatasetSpec):
        if spec.num_tables != _NUM_CAT or spec.num_dense != _NUM_INT:
            raise ValueError(
                "Criteo format requires 13 dense and 26 categorical features; "
                f"spec has {spec.num_dense}/{spec.num_tables}"
            )
        self.path = os.fspath(path)
        self.spec = spec

    def batches(self, batch_size: int, *, max_samples: int | None = None) -> Iterator[Batch]:
        """Yield :class:`Batch` objects until the file (or cap) is exhausted.

        Criteo has exactly one categorical value per feature per sample
        (pooling factor 1), so every bag has one index.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        labels: list[float] = []
        dense_rows: list[np.ndarray] = []
        cat_rows: list[np.ndarray] = []
        seen = 0
        with open(self.path, "r", encoding="ascii") as fh:
            for line in fh:
                if not line.strip():
                    continue
                label, dense, cats = parse_criteo_line(line, self.spec.table_sizes)
                labels.append(label)
                dense_rows.append(dense)
                cat_rows.append(cats)
                seen += 1
                if len(labels) == batch_size:
                    yield self._assemble(labels, dense_rows, cat_rows)
                    labels, dense_rows, cat_rows = [], [], []
                if max_samples is not None and seen >= max_samples:
                    break
        if labels:
            yield self._assemble(labels, dense_rows, cat_rows)

    def _assemble(self, labels, dense_rows, cat_rows) -> Batch:
        b = len(labels)
        cats = np.stack(cat_rows)  # (B, 26)
        ones = np.ones(b, dtype=np.int64)
        sparse = [
            (cats[:, t].astype(np.int64), make_offsets(ones))
            for t in range(self.spec.num_tables)
        ]
        return Batch(
            dense=np.stack(dense_rows),
            sparse=sparse,
            labels=np.asarray(labels, dtype=np.float64),
        )
