"""Synthetic Criteo-shaped CTR data with a planted logistic ground truth.

Design goals (what of Criteo must survive the substitution — DESIGN.md):

1. **Layout** — 13 continuous features, 26 categorical features with the
   spec's exact per-table cardinalities, binary label.
2. **Traffic skew** — per-table Zipf access distributions (paper §3.1:
   "data samples ... often follow a Power or Zipfian distribution"), so
   LFU caching and frequent-row analyses behave as in production traces.
3. **Learnability** — labels come from a planted logistic model over the
   dense features and *hash-derived latent factors* of the categorical
   values, so an embedding-based model genuinely improves with capacity
   and approximation error shows up as accuracy loss. Latents are pure
   functions of ``(table, row)`` via splitmix64 — no O(rows) storage, so
   the generator scales to the full 40M-row Terabyte tables.

The Bayes accuracy of the generator is controlled by ``noise``: the logit
is scaled so labels are predictable-but-noisy like CTR data (~78-80%
accuracy regimes in the paper's Table 1).
"""

from __future__ import annotations

import numpy as np

from repro.cache.hashtable import splitmix64
from repro.data.batching import Batch, make_offsets
from repro.data.specs import DatasetSpec
from repro.data.zipf import ZipfSampler
from repro.utils.seeding import as_rng, spawn_rngs

__all__ = ["SyntheticCTRDataset", "hash_gaussian"]


def hash_gaussian(keys: np.ndarray, salt: int, dim: int) -> np.ndarray:
    """Deterministic pseudo-Gaussian latent vectors keyed by integers.

    Returns ``(len(keys), dim)`` values that behave like i.i.d. ``N(0,1)``
    draws but are computed, not stored: each entry is a Box-Muller
    transform of two splitmix64-derived uniforms. The same ``(key, salt)``
    always yields the same latent — the planted model's lookup table.
    """
    keys = np.asarray(keys, dtype=np.int64)
    out = np.empty((keys.size, dim), dtype=np.float64)
    for j in range(0, dim, 2):
        mixed = splitmix64(keys * np.int64(2654435761) + np.int64(salt * 1_000_003 + j))
        hi = (mixed >> np.uint64(40)).astype(np.float64)  # 24 bits
        lo = ((mixed >> np.uint64(16)) & np.uint64(0xFFFFFF)).astype(np.float64)
        u1 = (hi + 0.5) / float(1 << 24)
        u2 = (lo + 0.5) / float(1 << 24)
        r = np.sqrt(-2.0 * np.log(u1))
        out[:, j] = r * np.cos(2.0 * np.pi * u2)
        if j + 1 < dim:
            out[:, j + 1] = r * np.sin(2.0 * np.pi * u2)
    return out


class SyntheticCTRDataset:
    """Stream of Criteo-shaped batches with a fixed planted model.

    Parameters
    ----------
    spec:
        Table layout (use a :meth:`DatasetSpec.scaled` spec for training).
    zipf_s:
        Zipf exponent of every table's traffic (0 = uniform).
    pooling_factor:
        Mean lookups per bag, the paper's ``P``. ``P=1`` (Criteo) gives one
        index per bag; ``P>1`` draws bag sizes from a shifted Poisson —
        the embedding-dominated microbenchmark regime of §6.6.
    latent_dim:
        Width of the planted per-value latent factors.
    noise:
        Logit noise std; larger = harder problem, lower Bayes accuracy.
    signal_tables:
        How many of the largest tables carry label signal. Smaller tables
        contribute weaker signal (mirroring feature importance skew).
    seed:
        Master seed; fixes the planted model, traffic and labels.
    """

    def __init__(self, spec: DatasetSpec, *, zipf_s: float = 1.05,
                 pooling_factor: float = 1.0, latent_dim: int = 4,
                 noise: float = 1.0, signal_tables: int | None = None,
                 seed: int = 0):
        if pooling_factor < 1.0:
            raise ValueError(f"pooling_factor must be >= 1, got {pooling_factor}")
        if latent_dim < 1:
            raise ValueError(f"latent_dim must be >= 1, got {latent_dim}")
        if noise < 0:
            raise ValueError(f"noise must be >= 0, got {noise}")
        self.spec = spec
        self.pooling_factor = pooling_factor
        self.latent_dim = latent_dim
        self.noise = noise
        master = as_rng(seed)
        model_rng, *table_rngs = spawn_rngs(master, spec.num_tables + 1)
        self._batch_rng = as_rng(master)
        self.samplers = [
            ZipfSampler(size, zipf_s, rng=r)
            for size, r in zip(spec.table_sizes, table_rngs)
        ]
        # Planted model parameters.
        self._w_dense = model_rng.normal(0.0, 1.0, size=spec.num_dense) / np.sqrt(
            spec.num_dense
        )
        if signal_tables is None:
            signal_tables = spec.num_tables
        strong = set(spec.largest(signal_tables))
        self._u = np.zeros((spec.num_tables, latent_dim))
        for t in range(spec.num_tables):
            scale = 1.0 if t in strong else 0.2
            self._u[t] = model_rng.normal(0.0, scale, size=latent_dim)
        self._u /= np.sqrt(max(1, spec.num_tables) * latent_dim)
        self._bias = float(model_rng.normal(0.0, 0.1))

    # ------------------------------------------------------------------ #

    def _bag_counts(self, batch_size: int) -> np.ndarray:
        if self.pooling_factor == 1.0:
            return np.ones(batch_size, dtype=np.int64)
        # Shifted Poisson keeps every bag non-empty with mean ~= P.
        lam = self.pooling_factor - 1.0
        return 1 + self._batch_rng.poisson(lam, size=batch_size).astype(np.int64)

    def logits(self, dense: np.ndarray,
               sparse: list[tuple[np.ndarray, np.ndarray]]) -> np.ndarray:
        """Noise-free planted logits for given features (test oracle)."""
        z = dense @ self._w_dense + self._bias
        for t, (indices, offsets) in enumerate(sparse):
            latents = hash_gaussian(indices, salt=t, dim=self.latent_dim)
            contrib = latents @ self._u[t]
            # mean-pool each bag's contribution
            cs = np.concatenate([[0.0], np.cumsum(contrib)])
            sums = cs[offsets[1:]] - cs[offsets[:-1]]
            counts = np.maximum(np.diff(offsets), 1)
            z = z + sums / counts
        return z

    def batch(self, batch_size: int) -> Batch:
        """Draw one labelled mini-batch."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        rng = self._batch_rng
        dense = rng.normal(0.0, 1.0, size=(batch_size, self.spec.num_dense))
        sparse = []
        for t in range(self.spec.num_tables):
            counts = self._bag_counts(batch_size)
            indices = self.samplers[t].sample(int(counts.sum()))
            sparse.append((indices, make_offsets(counts)))
        z = self.logits(dense, sparse)
        if self.noise:
            z = z + rng.normal(0.0, self.noise, size=batch_size)
        # Scale so click probabilities are spread but not saturated.
        probs = 1.0 / (1.0 + np.exp(-2.0 * z))
        labels = (rng.random(batch_size) < probs).astype(np.float64)
        return Batch(dense=dense, sparse=sparse, labels=labels)

    def batches(self, batch_size: int, num_batches: int):
        """Yield ``num_batches`` consecutive batches."""
        for _ in range(num_batches):
            yield self.batch(batch_size)

    def clone_stream(self, seed: int) -> "SyntheticCTRDataset":
        """Independent sample stream over the *same* planted model.

        Use for held-out evaluation sets that stay fixed regardless of how
        many training batches were consumed: the clone shares the planted
        weights and per-table traffic distributions (bitwise) but draws
        samples from its own RNG.
        """
        clone = object.__new__(SyntheticCTRDataset)
        clone.__dict__.update(self.__dict__)
        clone._batch_rng = as_rng(seed)
        # Samplers carry their own RNG; rebuild them with cloned state so
        # the two streams do not interleave draws.
        clone.samplers = []
        child_rngs = spawn_rngs(seed + 1, self.spec.num_tables)
        for sampler, rng in zip(self.samplers, child_rngs):
            twin = object.__new__(type(sampler))
            twin.__dict__.update(sampler.__dict__)
            twin._rng = rng
            twin._rank_to_id = sampler._rank_to_id.copy()
            clone.samplers.append(twin)
        return clone

    def access_stream(self, table: int, num_accesses: int) -> np.ndarray:
        """Raw row-access trace of one table (locality experiments, Fig. 9)."""
        if not (0 <= table < self.spec.num_tables):
            raise ValueError(f"table {table} out of range")
        return self.samplers[table].sample(num_accesses)
