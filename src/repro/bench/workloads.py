"""Synthetic lookup workloads for the kernel microbenchmarks (§6.6).

Three generators cover the paper's timing experiments:

- :func:`pooling_workload` — Zipf traffic with pooling factor ``P``
  (Fig. 11: P in {1, 10, 100});
- :func:`uniform_workload` — uniform traffic (kernel-efficiency sweeps,
  Fig. 8);
- :func:`controlled_hitrate_workload` — indices drawn so that an exact
  target fraction hits a given cached set (Fig. 12's x-axis).
"""

from __future__ import annotations

import numpy as np

from repro.data.batching import make_offsets
from repro.data.zipf import ZipfSampler
from repro.utils.seeding import as_rng

__all__ = ["pooling_workload", "uniform_workload", "controlled_hitrate_workload"]


def pooling_workload(num_rows: int, batch_size: int, pooling_factor: int, *,
                     zipf_s: float = 1.05,
                     rng: int | None | np.random.Generator = None
                     ) -> tuple[np.ndarray, np.ndarray]:
    """``(indices, offsets)`` with exactly ``pooling_factor`` lookups per bag."""
    if pooling_factor < 1:
        raise ValueError(f"pooling_factor must be >= 1, got {pooling_factor}")
    rng = as_rng(rng)
    sampler = ZipfSampler(num_rows, zipf_s, rng=rng)
    indices = sampler.sample(batch_size * pooling_factor)
    offsets = make_offsets(np.full(batch_size, pooling_factor, dtype=np.int64))
    return indices, offsets


def uniform_workload(num_rows: int, batch_size: int, *, pooling_factor: int = 1,
                     rng: int | None | np.random.Generator = None
                     ) -> tuple[np.ndarray, np.ndarray]:
    """``(indices, offsets)`` with uniformly-random indices."""
    rng = as_rng(rng)
    indices = rng.integers(0, num_rows, size=batch_size * pooling_factor)
    offsets = make_offsets(np.full(batch_size, pooling_factor, dtype=np.int64))
    return indices, offsets


def controlled_hitrate_workload(num_rows: int, batch_size: int, *,
                                cached_ids: np.ndarray, hit_rate: float,
                                pooling_factor: int = 1,
                                rng: int | None | np.random.Generator = None
                                ) -> tuple[np.ndarray, np.ndarray]:
    """Workload whose indices hit ``cached_ids`` at an exact target rate.

    Each lookup is a cached id with probability ``hit_rate`` (drawn
    uniformly from the cached set) and a non-cached id otherwise. The
    realised hit count is fixed (not merely expected) so benchmark runs
    are comparable: exactly ``round(hit_rate * n)`` lookups hit.
    """
    if not (0.0 <= hit_rate <= 1.0):
        raise ValueError(f"hit_rate must be in [0, 1], got {hit_rate}")
    rng = as_rng(rng)
    cached_ids = np.asarray(cached_ids, dtype=np.int64)
    if cached_ids.size == 0 and hit_rate > 0:
        raise ValueError("cannot target a positive hit rate with an empty cache")
    n = batch_size * pooling_factor
    n_hits = int(round(hit_rate * n))
    mask = np.zeros(n, dtype=bool)
    mask[rng.choice(n, size=n_hits, replace=False)] = True

    indices = np.empty(n, dtype=np.int64)
    if n_hits:
        indices[mask] = rng.choice(cached_ids, size=n_hits, replace=True)
    n_miss = n - n_hits
    if n_miss:
        cached_set = np.sort(cached_ids)
        misses = np.empty(0, dtype=np.int64)
        if cached_set.size >= num_rows:
            raise ValueError("cache covers every row; misses are impossible")
        while misses.size < n_miss:
            draw = rng.integers(0, num_rows, size=2 * (n_miss - misses.size) + 8)
            if cached_set.size:
                pos = np.minimum(np.searchsorted(cached_set, draw), cached_set.size - 1)
                draw = draw[cached_set[pos] != draw]
            misses = np.concatenate([misses, draw])
        indices[~mask] = misses[:n_miss]
    offsets = make_offsets(np.full(batch_size, pooling_factor, dtype=np.int64))
    return indices, offsets
