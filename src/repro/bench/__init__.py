"""Benchmark harness: workload generators and result reporting."""

from repro.bench.reporting import (
    BENCH_SCHEMA,
    format_series,
    format_table,
    write_bench_json,
)
from repro.bench.workloads import (
    controlled_hitrate_workload,
    pooling_workload,
    uniform_workload,
)

__all__ = [
    "pooling_workload",
    "uniform_workload",
    "controlled_hitrate_workload",
    "format_table",
    "format_series",
    "write_bench_json",
    "BENCH_SCHEMA",
]
