"""Benchmark harness: workload generators, reporting, regression gate."""

from repro.bench.regression import (
    BASELINE_SCHEMA,
    compare,
    load_bench,
    normalized_arms,
)
from repro.bench.reporting import (
    BENCH_SCHEMA,
    format_series,
    format_table,
    write_bench_json,
)
from repro.bench.workloads import (
    controlled_hitrate_workload,
    pooling_workload,
    uniform_workload,
)

__all__ = [
    "pooling_workload",
    "uniform_workload",
    "controlled_hitrate_workload",
    "format_table",
    "format_series",
    "write_bench_json",
    "BENCH_SCHEMA",
    "BASELINE_SCHEMA",
    "load_bench",
    "normalized_arms",
    "compare",
]
