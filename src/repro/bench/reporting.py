"""Benchmark reporting: text tables/series and machine-readable JSON.

The benchmark harness prints the same rows and series the paper's tables
and figures report; these helpers keep that output aligned and uniform
without pulling in a plotting dependency. :func:`write_bench_json`
additionally persists a ``BENCH_<name>.json`` document (schema
``repro.bench/v1``) bundling the measured data with the telemetry span
tree, so the perf trajectory can be tracked across commits instead of
scraped from stdout.
"""

from __future__ import annotations

import json
import os
import time
from collections.abc import Sequence

__all__ = ["format_table", "format_series", "write_bench_json",
           "BENCH_SCHEMA"]

BENCH_SCHEMA = "repro.bench/v1"


def write_bench_json(name: str, data: dict, *,
                     out_dir: str | os.PathLike | None = None) -> str:
    """Write ``BENCH_<name>.json`` and return its path.

    ``data`` is the benchmark-specific measurement payload; the document
    wraps it with the schema tag, a wall-clock timestamp and the current
    telemetry span tree (empty unless tracing was enabled, as the
    benchmark conftest does by default). ``out_dir`` defaults to
    ``$REPRO_BENCH_OUT`` or the working directory.
    """
    from repro.telemetry import get_registry, get_tracer

    if out_dir is None:
        out_dir = os.environ.get("REPRO_BENCH_OUT", ".")
    path = os.path.join(os.fspath(out_dir), f"BENCH_{name}.json")
    doc = {
        "schema": BENCH_SCHEMA,
        "bench": name,
        "unix_time": time.time(),
        "data": data,
        "spans": get_tracer().tree_dict(),
        "metrics": get_registry().snapshot(),
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    return path


def format_table(headers: Sequence[str], rows: Sequence[Sequence], *,
                 title: str | None = None, float_fmt: str = "{:.4g}") -> str:
    """Render rows as a fixed-width text table."""
    def cell(v) -> str:
        if isinstance(v, float):
            return float_fmt.format(v)
        return str(v)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}"
            )
        for i, v in enumerate(row):
            widths[i] = max(widths[i], len(v))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence, *,
                  x_label: str = "x", y_label: str = "y",
                  float_fmt: str = "{:.4g}") -> str:
    """Render one figure series as aligned (x, y) pairs."""
    if len(xs) != len(ys):
        raise ValueError(f"xs ({len(xs)}) and ys ({len(ys)}) lengths differ")

    def cell(v) -> str:
        return float_fmt.format(v) if isinstance(v, float) else str(v)

    lines = [f"series: {name}"]
    xw = max([len(x_label)] + [len(cell(x)) for x in xs])
    lines.append(f"  {x_label.ljust(xw)}  {y_label}")
    for x, y in zip(xs, ys):
        lines.append(f"  {cell(x).ljust(xw)}  {cell(y)}")
    return "\n".join(lines)
