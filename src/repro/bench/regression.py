"""Kernel benchmark regression gate (CI ``kernel-bench`` job).

Raw ms/iter numbers are machine-dependent, so ``BENCH_kernels.json``
records every planner arm *normalised* by a reference arm measured in the
same run (``data.reference_arm``). The committed baseline
(``benchmarks/baseline_kernels.json``) pins the expected normalised values;
:func:`compare` fails any arm whose normalised ms/iter grew by more than
``tolerance`` (default 20%) — i.e. a steady-state slowdown relative to
the rest of the kernel suite, which survives slower/faster CI runners.

Usage (exit 1 on regression)::

    python -m repro.bench.regression BENCH_kernels.json \
        benchmarks/baseline_kernels.json --tolerance 0.20

A baseline can be (re)written from a current run with ``--write-baseline``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.reporting import BENCH_SCHEMA

__all__ = ["load_bench", "normalized_arms", "compare", "main",
           "BASELINE_SCHEMA"]

BASELINE_SCHEMA = "repro.bench.baseline/v1"


def load_bench(path: str) -> dict:
    """Load and validate a ``repro.bench/v1`` document with planner arms."""
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {BENCH_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    data = doc.get("data", {})
    if "arms" not in data or "reference_arm" not in data:
        raise ValueError(f"{path}: no planner arms recorded (data.arms missing)")
    if data["reference_arm"] not in data["arms"]:
        raise ValueError(
            f"{path}: reference arm {data['reference_arm']!r} not in arms"
        )
    return doc


def normalized_arms(doc: dict) -> dict[str, float]:
    """Per-arm ms/iter divided by the run's reference arm."""
    data = doc["data"]
    ref = float(data["arms"][data["reference_arm"]]["ms_per_iter"])
    if ref <= 0:
        raise ValueError(f"reference arm {data['reference_arm']!r} has ms <= 0")
    return {
        name: float(arm["ms_per_iter"]) / ref
        for name, arm in data["arms"].items()
    }


def load_baseline(path: str) -> dict:
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {BASELINE_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    if not isinstance(doc.get("arms"), dict) or not doc["arms"]:
        raise ValueError(f"{path}: baseline has no arms")
    return doc


def compare(current: dict, baseline: dict, *,
            tolerance: float = 0.20) -> list[str]:
    """Return regression messages (empty list = gate passes).

    ``current`` is a loaded bench doc; ``baseline`` a loaded baseline doc.
    An arm regresses when its normalised ms/iter exceeds the baseline
    value by more than ``tolerance``. Arms missing from the current run
    fail too (a silently dropped arm must not pass the gate).
    """
    norm = normalized_arms(current)
    failures = []
    for name, expected in baseline["arms"].items():
        if name not in norm:
            failures.append(f"{name}: arm missing from current run")
            continue
        got = norm[name]
        limit = float(expected) * (1.0 + tolerance)
        if got > limit:
            failures.append(
                f"{name}: normalised ms/iter {got:.3f} exceeds baseline "
                f"{float(expected):.3f} by more than {tolerance:.0%} "
                f"(limit {limit:.3f})"
            )
    return failures


def write_baseline(current: dict, path: str, *, note: str = "") -> None:
    doc = {
        "schema": BASELINE_SCHEMA,
        "reference_arm": current["data"]["reference_arm"],
        "note": note or ("normalised ms/iter per arm, relative to "
                         "reference_arm in the same run"),
        "arms": {name: round(v, 4)
                 for name, v in normalized_arms(current).items()},
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.regression",
        description="Fail on kernel-bench regression vs a committed baseline",
    )
    parser.add_argument("current", help="BENCH_kernels.json from this run")
    parser.add_argument("baseline", nargs="?",
                        help="committed baseline_kernels.json")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed normalised slowdown (default 0.20)")
    parser.add_argument("--write-baseline", metavar="PATH",
                        help="write a new baseline from the current run")
    args = parser.parse_args(argv)

    current = load_bench(args.current)
    if args.write_baseline:
        write_baseline(current, args.write_baseline)
        print(f"wrote baseline {args.write_baseline}")
        return 0
    if not args.baseline:
        parser.error("baseline path required (or use --write-baseline)")
    baseline = load_baseline(args.baseline)

    norm = normalized_arms(current)
    width = max(len(n) for n in norm)
    print(f"reference arm: {current['data']['reference_arm']}")
    for name in sorted(norm):
        base = baseline["arms"].get(name)
        base_s = f"baseline {float(base):8.3f}" if base is not None else "(ungated)"
        print(f"  {name.ljust(width)}  norm {norm[name]:8.3f}  {base_s}")
    failures = compare(current, baseline, tolerance=args.tolerance)
    if failures:
        print(f"\nREGRESSION ({len(failures)} arm(s), tolerance "
              f"{args.tolerance:.0%}):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\ngate passed ({len(baseline['arms'])} arms within "
          f"{args.tolerance:.0%} of baseline)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
