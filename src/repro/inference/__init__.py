"""Frozen-model inference: batch prediction and candidate ranking.

The paper's motivation (§1): recommendation models consume "80% of the
total AI inference cycles" at Facebook. This package provides the serving
side of the reproduction — a :class:`Predictor` that freezes a trained
DLRM (optionally quantizing its remaining dense tables) and serves click
probabilities, plus candidate-ranking utilities for the
retrieve-then-rank pattern recommendation systems use.
"""

from repro.inference.predictor import Predictor, rank_candidates

__all__ = ["Predictor", "rank_candidates"]
