"""Serving-side wrapper over a trained DLRM.

``Predictor`` freezes a model for inference:

- forward passes never populate backward caches beyond one batch and
  gradients are never touched;
- optionally the remaining *dense* tables are post-training quantized
  (Guan et al. 2019 style) to shrink the serving footprint further;
- ``predict_batch`` applies a stable sigmoid; ``rank_candidates`` scores
  one user context against many candidate items and returns the top-k —
  the ranking stage of a production recommender.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.quantization import QuantizedEmbeddingBag
from repro.data.batching import Batch, make_offsets
from repro.models.dlrm import DLRM
from repro.ops.embedding import EmbeddingBag

__all__ = ["Predictor", "rank_candidates"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


class Predictor:
    """Inference-only view of a trained DLRM.

    Parameters
    ----------
    model:
        The trained model. It is used in place (not copied) unless
        quantization replaces some of its embedding operators — in which
        case the replaced operators are new, but the original model object
        is left untouched.
    quantize_dense_bits:
        If set, every dense :class:`EmbeddingBag` table is replaced by a
        post-training quantized copy at this bit width (TT tables stay TT —
        they are already 100x smaller than dense).
    """

    def __init__(self, model: DLRM, *, quantize_dense_bits: int | None = None):
        self.config = model.config
        if quantize_dense_bits is None:
            self._embeddings = list(model.embeddings)
        else:
            self._embeddings = [
                QuantizedEmbeddingBag.from_dense(e.weight.data,
                                                 bits=quantize_dense_bits)
                if isinstance(e, EmbeddingBag) else e
                for e in model.embeddings
            ]
        # Towers and interaction are shared (read-only use).
        self._bottom = model.bottom_mlp
        self._top = model.top_mlp
        self._interaction = model.interaction

    def serving_parameters(self) -> int:
        """fp32-equivalent parameter count of the serving model."""
        total = self._bottom.num_parameters() + self._top.num_parameters()
        total += sum(e.num_parameters() for e in self._embeddings)
        return total

    def predict_logits(self, dense: np.ndarray,
                       sparse: list[tuple[np.ndarray, np.ndarray]]) -> np.ndarray:
        dense = np.asarray(dense, dtype=np.float64)
        x = self._bottom.forward(dense)
        pooled = [
            emb.forward(indices, offsets)
            for emb, (indices, offsets) in zip(self._embeddings, sparse)
        ]
        z = self._interaction.forward(x, pooled)
        return self._top.forward(z).reshape(-1)

    def predict_batch(self, batch: Batch) -> np.ndarray:
        """Click probabilities for a batch."""
        return _sigmoid(self.predict_logits(batch.dense, batch.sparse))

    def predict_proba(self, dense: np.ndarray,
                      sparse: list[tuple[np.ndarray, np.ndarray]]) -> np.ndarray:
        return _sigmoid(self.predict_logits(dense, sparse))


def rank_candidates(predictor: Predictor, *, user_dense: np.ndarray,
                    user_sparse: list[int | None], candidate_table: int,
                    candidate_ids: np.ndarray, top_k: int = 10
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Score one user context against candidate items; return the top-k.

    Parameters
    ----------
    user_dense:
        ``(num_dense,)`` continuous features of the user/context.
    user_sparse:
        One categorical value per table (``None`` for an empty bag),
        *except* the candidate table, whose value is swept.
    candidate_table:
        Index of the table holding the item being ranked.
    candidate_ids:
        Item ids to score.
    top_k:
        How many winners to return.

    Returns
    -------
    ``(top_ids, top_probs)`` sorted by descending probability.
    """
    candidate_ids = np.asarray(candidate_ids, dtype=np.int64).reshape(-1)
    n = candidate_ids.size
    if n == 0:
        raise ValueError("no candidates to rank")
    cfg = predictor.config
    if not (0 <= candidate_table < cfg.num_tables):
        raise ValueError(f"candidate_table {candidate_table} out of range")
    if len(user_sparse) != cfg.num_tables:
        raise ValueError(
            f"user_sparse must have {cfg.num_tables} entries, got {len(user_sparse)}"
        )
    dense = np.broadcast_to(
        np.asarray(user_dense, dtype=np.float64), (n, cfg.num_dense)
    ).copy()
    sparse = []
    ones = np.ones(n, dtype=np.int64)
    for t in range(cfg.num_tables):
        if t == candidate_table:
            sparse.append((candidate_ids, make_offsets(ones)))
        elif user_sparse[t] is None:
            sparse.append((np.empty(0, dtype=np.int64),
                           np.zeros(n + 1, dtype=np.int64)))
        else:
            value = int(user_sparse[t])
            sparse.append((np.full(n, value, dtype=np.int64), make_offsets(ones)))
    probs = predictor.predict_proba(dense, sparse)
    top_k = min(top_k, n)
    order = np.argsort(-probs, kind="stable")[:top_k]
    return candidate_ids[order], probs[order]
