"""Serving-side wrapper over a trained DLRM.

``Predictor`` freezes a model for inference:

- forward passes never populate backward caches beyond one batch and
  gradients are never touched;
- optionally the remaining *dense* tables are post-training quantized
  (Guan et al. 2019 style) to shrink the serving footprint further;
- ``predict_batch`` applies a stable sigmoid; ``rank_candidates`` scores
  one user context against many candidate items and returns the top-k —
  the ranking stage of a production recommender.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.baselines.quantization import QuantizedEmbeddingBag
from repro.data.batching import Batch, make_offsets
from repro.models.dlrm import DLRM
from repro.ops.embedding import EmbeddingBag
from repro.utils.validation import check_1d_int_array

__all__ = ["Predictor", "rank_candidates"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


class Predictor:
    """Inference-only view of a trained DLRM.

    Parameters
    ----------
    model:
        The trained model. It is used in place (not copied) unless
        quantization replaces some of its embedding operators — in which
        case the replaced operators are new, but the original model object
        is left untouched.
    quantize_dense_bits:
        If set, every dense :class:`EmbeddingBag` table is replaced by a
        post-training quantized copy at this bit width (TT tables stay TT —
        they are already 100x smaller than dense).
    """

    def __init__(self, model: DLRM, *, quantize_dense_bits: int | None = None):
        self.config = model.config
        self.quantization_report: list[tuple[int, str, str]] = []
        if quantize_dense_bits is None:
            self._embeddings = list(model.embeddings)
        else:
            self._embeddings = [
                self._maybe_quantize(t, e, quantize_dense_bits)
                for t, e in enumerate(model.embeddings)
            ]
        # Towers and interaction are shared (read-only use).
        self._bottom = model.bottom_mlp
        self._top = model.top_mlp
        self._interaction = model.interaction

    def _maybe_quantize(self, table: int, emb, bits: int):
        """Quantize one embedding operator, or explain why it is skipped.

        Every operator type is handled explicitly so a mixed model (hashed
        or low-rank baselines alongside dense and TT tables) cannot
        silently overstate its serving-footprint reduction: anything left
        at full precision without a principled reason raises a
        ``RuntimeWarning`` and shows up in ``quantization_report``.
        """
        from repro.baselines.hashing import HashedEmbeddingBag
        from repro.cache.cached_embedding import CachedTTEmbeddingBag
        from repro.tt.embedding_bag import TTEmbeddingBag

        kind = type(emb).__name__
        if isinstance(emb, EmbeddingBag):
            self.quantization_report.append((table, kind, f"quantized@{bits}b"))
            return QuantizedEmbeddingBag.from_dense(emb.weight.data, bits=bits,
                                                    mode=emb.mode)
        if isinstance(emb, HashedEmbeddingBag):
            # The physical bucket table is a plain EmbeddingBag, but the
            # hash + sign transform lives in the wrapper: quantizing the
            # inner table in place would mutate the (shared) model, so the
            # operator is kept and reported.
            self.quantization_report.append((table, kind, "skipped"))
            warnings.warn(
                f"table {table}: {kind} left unquantized (its bucket table "
                "is shared with the training model); serving footprint "
                "includes the full-precision buckets",
                RuntimeWarning, stacklevel=3,
            )
            return emb
        if isinstance(emb, (TTEmbeddingBag, CachedTTEmbeddingBag)):
            # TT tables are already 100x+ smaller than dense; quantizing
            # the cores would compound approximation error for a
            # negligible footprint win (paper §6.2).
            self.quantization_report.append((table, kind, "tt-kept"))
            return emb
        if isinstance(emb, QuantizedEmbeddingBag):
            self.quantization_report.append((table, kind, "already-quantized"))
            return emb
        self.quantization_report.append((table, kind, "skipped"))
        warnings.warn(
            f"table {table}: no quantization rule for {kind}; operator kept "
            "at full precision (serving footprint may be overstated)",
            RuntimeWarning, stacklevel=3,
        )
        return emb

    @property
    def embeddings(self) -> list:
        """The serving-side embedding operators (read-only list copy)."""
        return list(self._embeddings)

    def serving_parameters(self) -> int:
        """fp32-equivalent parameter count of the serving model."""
        total = self._bottom.num_parameters() + self._top.num_parameters()
        total += sum(e.num_parameters() for e in self._embeddings)
        return total

    def predict_logits(self, dense: np.ndarray,
                       sparse: list[tuple[np.ndarray, np.ndarray]]) -> np.ndarray:
        dense = np.asarray(dense, dtype=np.float64)
        pooled = [
            emb.forward(indices, offsets)
            for emb, (indices, offsets) in zip(self._embeddings, sparse)
        ]
        return self.logits_from_pooled(dense, pooled)

    def logits_from_pooled(self, dense: np.ndarray,
                           pooled: list[np.ndarray]) -> np.ndarray:
        """Towers + interaction over already-pooled embedding vectors.

        The hook :class:`repro.serving.InferenceServer` uses to run the
        embedding stage itself (so it can degrade per-table backends)
        while sharing the exact tower math with :meth:`predict_logits`.
        """
        dense = np.asarray(dense, dtype=np.float64)
        x = self._bottom.forward(dense)
        z = self._interaction.forward(x, pooled)
        return self._top.forward(z).reshape(-1)

    def predict_batch(self, batch: Batch) -> np.ndarray:
        """Click probabilities for a batch."""
        return _sigmoid(self.predict_logits(batch.dense, batch.sparse))

    def predict_proba(self, dense: np.ndarray,
                      sparse: list[tuple[np.ndarray, np.ndarray]]) -> np.ndarray:
        return _sigmoid(self.predict_logits(dense, sparse))


def rank_candidates(predictor: Predictor, *, user_dense: np.ndarray,
                    user_sparse: list[int | None], candidate_table: int,
                    candidate_ids: np.ndarray, top_k: int = 10
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Score one user context against candidate items; return the top-k.

    Parameters
    ----------
    user_dense:
        ``(num_dense,)`` continuous features of the user/context.
    user_sparse:
        One categorical value per table (``None`` for an empty bag),
        *except* the candidate table, whose value is swept.
    candidate_table:
        Index of the table holding the item being ranked.
    candidate_ids:
        Item ids to score.
    top_k:
        How many winners to return.

    Returns
    -------
    ``(top_ids, top_probs)`` sorted by descending probability.
    """
    candidate_ids = np.asarray(candidate_ids).reshape(-1)
    n = candidate_ids.size
    if n == 0:
        raise ValueError("no candidates to rank")
    cfg = predictor.config
    if not (0 <= candidate_table < cfg.num_tables):
        raise ValueError(f"candidate_table {candidate_table} out of range")
    if len(user_sparse) != cfg.num_tables:
        raise ValueError(
            f"user_sparse must have {cfg.num_tables} entries, got {len(user_sparse)}"
        )
    # A bad id must error here, not score garbage: every id is checked
    # against its table's cardinality before any table is touched.
    candidate_ids = check_1d_int_array(
        "candidate_ids", candidate_ids,
        min_value=0, max_value=cfg.table_sizes[candidate_table] - 1,
    )
    for t, value in enumerate(user_sparse):
        if t == candidate_table or value is None:
            continue
        if not (0 <= int(value) < cfg.table_sizes[t]):
            raise IndexError(
                f"user_sparse[{t}] = {value} out of range for table of "
                f"{cfg.table_sizes[t]} rows"
            )
    user_dense = np.asarray(user_dense, dtype=np.float64).reshape(-1)
    if user_dense.shape[0] != cfg.num_dense:
        raise ValueError(
            f"user_dense must have {cfg.num_dense} features, got {user_dense.shape[0]}"
        )
    dense = np.broadcast_to(user_dense, (n, cfg.num_dense)).copy()
    sparse = []
    ones = np.ones(n, dtype=np.int64)
    for t in range(cfg.num_tables):
        if t == candidate_table:
            sparse.append((candidate_ids, make_offsets(ones)))
        elif user_sparse[t] is None:
            sparse.append((np.empty(0, dtype=np.int64),
                           np.zeros(n + 1, dtype=np.int64)))
        else:
            value = int(user_sparse[t])
            sparse.append((np.full(n, value, dtype=np.int64), make_offsets(ones)))
    probs = predictor.predict_proba(dense, sparse)
    top_k = min(top_k, n)
    order = np.argsort(-probs, kind="stable")[:top_k]
    return candidate_ids[order], probs[order]
