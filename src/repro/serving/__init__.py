"""Hardened serving runtime for the inference path (docs/SERVING.md).

The production tier in front of :class:`repro.inference.Predictor`:

- :mod:`repro.serving.admission` — request validation/repair with
  per-reason rejection counters (clamp/hash/reject OOV policies, CSR
  offset repair, NaN/Inf dense rejection);
- :mod:`repro.serving.queue` — deadline-aware micro-batching with a
  bounded queue, load shedding and a backpressure signal;
- :mod:`repro.serving.breaker` — circuit breakers (closed/open/half-open)
  over embedding backends;
- :mod:`repro.serving.server` — the degradation ladder (cached hybrid →
  direct TT contraction → frequency-prior default row), health/readiness
  probes and the ``serving.*`` fault-injection sites;
- :mod:`repro.serving.loadgen` — the closed-loop generator behind
  ``repro serve-bench``, including fault-ledger reconciliation.
"""

from repro.serving.admission import (
    Rejection,
    Request,
    RequestSanitizer,
    SanitizedRequest,
    repair_offsets,
)
from repro.serving.breaker import CircuitBreaker
from repro.serving.loadgen import reconcile, run_load
from repro.serving.queue import ManualClock, MicroBatchQueue
from repro.serving.server import (
    InferenceServer,
    ServerConfig,
    TableLadder,
    frequency_prior_row,
)

__all__ = [
    "Request",
    "SanitizedRequest",
    "Rejection",
    "RequestSanitizer",
    "repair_offsets",
    "CircuitBreaker",
    "ManualClock",
    "MicroBatchQueue",
    "InferenceServer",
    "ServerConfig",
    "TableLadder",
    "frequency_prior_row",
    "run_load",
    "reconcile",
]
