"""Deadline-aware micro-batching queue with bounded depth and shedding.

Overload handling for the serving path: the queue has a hard depth bound
(arrivals beyond it are *shed*, not buffered — latency must not grow
unboundedly), a high-watermark backpressure signal for closed-loop
clients, and deadline awareness on both ends:

- at **submit** time each request is stamped with its absolute deadline
  (caller-supplied or ``default_deadline_ms`` from arrival);
- at **batch-forming** time requests whose deadline cannot be met even if
  served immediately (``deadline < now + expected service time``, an EWMA
  the server feeds back) are shed instead of wasting a slot, and the
  remaining requests are taken earliest-deadline-first.

Time comes from an injectable ``clock`` (milliseconds, monotonic), so
chaos tests and the ``serve-bench`` load generator run on a
:class:`ManualClock` and are fully deterministic.

A :class:`~repro.reliability.fault_injection.FaultInjector` probed at
``serving.queue`` models a lost queue entry: a firing fault sheds the
arriving request (counted separately, reconciled by ``serve-bench``).

The queue exports ``serving.enqueued`` (accepted arrivals),
``serving.shed{reason=}`` (one counter per shed reason) and the
``serving.queue_depth`` gauge to the shared metrics registry.
"""

from __future__ import annotations

from collections import deque
from time import perf_counter_ns

from repro.telemetry import finish_request, get_registry

__all__ = ["ManualClock", "MicroBatchQueue", "monotonic_ms"]

SHED_REASONS = ("queue_full", "deadline", "fault")


def monotonic_ms() -> float:
    """Default clock: monotonic milliseconds."""
    return perf_counter_ns() / 1e6


class ManualClock:
    """Deterministic clock for tests and simulated load generation."""

    def __init__(self, start_ms: float = 0.0):
        self._now = float(start_ms)

    def now(self) -> float:
        return self._now

    def advance(self, ms: float) -> float:
        if ms < 0:
            raise ValueError(f"cannot advance a monotonic clock by {ms} ms")
        self._now += ms
        return self._now

    __call__ = now


class MicroBatchQueue:
    """Bounded FIFO with deadline-aware, EDF-ordered batch forming.

    Parameters
    ----------
    max_depth:
        Hard bound on queued requests; arrivals beyond it are shed.
    max_batch:
        Most requests served in one micro-batch.
    default_deadline_ms:
        Relative deadline stamped on requests that carry none.
    high_watermark:
        Depth fraction above which :meth:`should_backpressure` is True.
    clock:
        Callable returning monotonic milliseconds.
    injector:
        Optional fault injector probed at ``serving.queue`` per submit.
    """

    def __init__(self, *, max_depth: int = 64, max_batch: int = 32,
                 default_deadline_ms: float = 50.0,
                 high_watermark: float = 0.8, clock=None, injector=None):
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if default_deadline_ms <= 0:
            raise ValueError(
                f"default_deadline_ms must be > 0, got {default_deadline_ms}"
            )
        if not (0.0 < high_watermark <= 1.0):
            raise ValueError(
                f"high_watermark must be in (0, 1], got {high_watermark}"
            )
        self.max_depth = max_depth
        self.max_batch = max_batch
        self.default_deadline_ms = default_deadline_ms
        self.high_watermark = high_watermark
        self.clock = clock if clock is not None else monotonic_ms
        self.injector = injector
        self._queue: deque = deque()
        # EWMA of observed per-batch service time, the deadline-feasibility
        # estimate (starts optimistic: an empty server serves instantly).
        self.expected_service_ms = 0.0
        self._ewma_alpha = 0.2
        reg = get_registry()
        self._shed = {
            reason: reg.counter("serving.shed", reason=reason)
            for reason in SHED_REASONS
        }
        self._enqueued = reg.counter("serving.enqueued")
        self._depth_gauge = reg.gauge("serving.queue_depth")

    # ------------------------------------------------------------------ #

    @property
    def depth(self) -> int:
        return len(self._queue)

    def should_backpressure(self) -> bool:
        """Closed-loop clients should slow down above the high watermark."""
        return len(self._queue) >= self.high_watermark * self.max_depth

    def shed_counts(self) -> dict[str, int]:
        return {reason: c.value for reason, c in self._shed.items()}

    @property
    def total_shed(self) -> int:
        return sum(c.value for c in self._shed.values())

    # ------------------------------------------------------------------ #

    def submit(self, request) -> str:
        """Enqueue a sanitized request; returns ``"queued"`` or a shed reason.

        ``request`` must expose ``deadline_ms`` and accept ``arrival_ms``
        assignment (:class:`repro.serving.admission.SanitizedRequest`).
        """
        now = self.clock()
        if self.injector is not None and self.injector.fires("serving.queue"):
            self._shed["fault"].inc()
            return "shed_fault"
        if len(self._queue) >= self.max_depth:
            self._shed["queue_full"].inc()
            return "shed_queue_full"
        request.arrival_ms = now
        if request.deadline_ms is None:
            request.deadline_ms = now + self.default_deadline_ms
        self._queue.append(request)
        self._enqueued.inc()
        self._depth_gauge.set(len(self._queue))
        return "queued"

    def next_batch(self) -> list:
        """Form one micro-batch: shed the infeasible, serve the most urgent.

        A request is infeasible when its deadline precedes ``now`` plus the
        service-time EWMA — serving it would burn a batch slot to produce
        an answer the client has already abandoned.
        """
        now = self.clock()
        horizon = now + self.expected_service_ms
        feasible = []
        for req in self._queue:
            if req.deadline_ms < horizon:
                self._shed["deadline"].inc()
                finish_request(req, "shed_deadline", now=now)
            else:
                feasible.append(req)
        feasible.sort(key=lambda r: r.deadline_ms)
        batch = feasible[: self.max_batch]
        self._queue = deque(feasible[self.max_batch:])
        self._depth_gauge.set(len(self._queue))
        return batch

    def observe_service(self, ms: float) -> None:
        """Feed back one batch's measured service time (updates the EWMA)."""
        if ms < 0:
            return
        if self.expected_service_ms == 0.0:
            self.expected_service_ms = ms
        else:
            a = self._ewma_alpha
            self.expected_service_ms = (1 - a) * self.expected_service_ms + a * ms
