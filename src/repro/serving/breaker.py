"""Circuit breaker over one serving backend (closed / open / half-open).

The classic pattern (Nygard, *Release It!*), counted in *calls* rather
than wall-clock so chaos tests are deterministic:

- **closed** — calls flow through; outcomes are recorded into a sliding
  window. When the window holds ``failure_threshold`` failures the
  breaker *opens* (the backend is presumed poisoned or broken).
- **open** — calls are refused for ``cooldown`` consecutive ``allow()``
  probes; the degradation ladder routes to the next rung meanwhile.
- **half-open** — after the cooldown, one trial call is let through per
  probe. ``half_open_successes`` consecutive successes close the breaker;
  any failure re-opens it.

Every transition is emitted as a ``serving.breaker`` telemetry event and
counted under ``serving.breaker.transitions{breaker=,to=}``, which is how
``serve-bench`` proves the ladder actually exercised its states.
"""

from __future__ import annotations

from collections import deque

from repro.telemetry import get_registry, traced_event

__all__ = ["CircuitBreaker"]

STATES = ("closed", "open", "half_open")


class CircuitBreaker:
    """Call-counted breaker guarding one rung of a degradation ladder."""

    def __init__(self, name: str, *, failure_threshold: int = 3,
                 window: int = 20, cooldown: int = 25,
                 half_open_successes: int = 2):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if window < failure_threshold:
            raise ValueError(
                f"window ({window}) must hold at least failure_threshold "
                f"({failure_threshold}) outcomes"
            )
        if cooldown < 1:
            raise ValueError(f"cooldown must be >= 1, got {cooldown}")
        if half_open_successes < 1:
            raise ValueError(
                f"half_open_successes must be >= 1, got {half_open_successes}"
            )
        self.name = name
        self.failure_threshold = failure_threshold
        self.window = window
        self.cooldown = cooldown
        self.half_open_successes = half_open_successes
        self.state = "closed"
        self.transitions: list[tuple[str, str]] = []
        self._outcomes: deque[bool] = deque(maxlen=window)  # True = failure
        self._open_probes = 0
        self._trial_successes = 0
        self._transition_counters = {
            to: get_registry().counter("serving.breaker.transitions",
                                       breaker=name, to=to)
            for to in STATES
        }

    # ------------------------------------------------------------------ #

    def _transition(self, to: str) -> None:
        if to == self.state:
            return
        traced_event("serving.breaker", breaker=self.name,
                     from_state=self.state, to_state=to)
        self.transitions.append((self.state, to))
        self._transition_counters[to].inc()
        self.state = to
        if to == "open":
            self._open_probes = 0
        elif to == "half_open":
            self._trial_successes = 0
        elif to == "closed":
            self._outcomes.clear()

    # ------------------------------------------------------------------ #

    def allow(self) -> bool:
        """May the guarded backend be called right now?"""
        if self.state == "closed":
            return True
        if self.state == "open":
            self._open_probes += 1
            if self._open_probes >= self.cooldown:
                self._transition("half_open")
                return True
            return False
        return True  # half_open: trial calls flow (sequential server)

    def record_success(self) -> None:
        if self.state == "half_open":
            self._trial_successes += 1
            if self._trial_successes >= self.half_open_successes:
                self._transition("closed")
            return
        self._outcomes.append(False)

    def record_failure(self) -> None:
        if self.state == "half_open":
            self._transition("open")
            return
        self._outcomes.append(True)
        if self.state == "closed" and sum(self._outcomes) >= self.failure_threshold:
            self._transition("open")

    def reset(self) -> None:
        """Close and forget all history (the guarded backend restarted)."""
        self._transition("closed")
        self._outcomes.clear()
        self._open_probes = 0
        self._trial_successes = 0

    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "state": self.state,
            "recent_failures": int(sum(self._outcomes)),
            "transitions": [f"{a}->{b}" for a, b in self.transitions],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CircuitBreaker({self.name!r}, state={self.state!r})"
