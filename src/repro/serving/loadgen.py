"""Closed-loop load generator for the serving runtime (``serve-bench``).

Drives an :class:`~repro.serving.server.InferenceServer` on a
:class:`~repro.serving.queue.ManualClock`: arrivals advance simulated
time (exponential inter-arrival), while service time is *measured* from
the real forward pass and fed back into both the clock and the queue's
deadline-feasibility EWMA. Latency numbers therefore combine real compute
cost with deterministic, reproducible queueing behaviour.

The generator can emit deliberately malformed traffic (NaN dense
features, out-of-vocabulary ids, garbage offsets-style scalar abuse) at a
configurable fraction to exercise the admission layer, and — when the
server carries a fault injector — reconciles every defensive counter
against the injector's per-site firing counts:

- ``serving.request`` firings must all surface as
  ``rejected{reason=dense_non_finite}``;
- ``serving.queue`` firings must all surface as ``shed{reason=fault}``;
- ``serving.backend`` firings must all surface as recorded backend
  failures (each one either served by a lower rung or scrubbed+retried).

A run passes only if those ledgers balance *and* every served probability
is finite — the ISSUE-3 chaos proof.
"""

from __future__ import annotations

import numpy as np

from repro.serving.admission import Request
from repro.serving.queue import ManualClock
from repro.serving.server import InferenceServer
from repro.telemetry import get_registry
from repro.utils.seeding import as_rng

__all__ = ["run_load", "reconcile"]


def _make_request(rng: np.random.Generator, cfg, rid: int,
                  deadline_ms: float | None, malformed: bool) -> Request:
    dense = rng.normal(size=cfg.num_dense)
    sparse = [
        rng.integers(0, size, size=int(rng.integers(1, 4)))
        for size in cfg.table_sizes
    ]
    if malformed:
        # One of the three corruption classes the admission layer repairs
        # or rejects; drawn from the same stream for reproducibility.
        kind = rng.integers(0, 3)
        if kind == 0:
            dense[rng.integers(0, dense.size)] = np.nan
        elif kind == 1:
            t = int(rng.integers(0, cfg.num_tables))
            sparse[t] = np.array([-5, cfg.table_sizes[t] + 17], dtype=np.int64)
        else:
            t = int(rng.integers(0, cfg.num_tables))
            sparse[t] = np.array([0.5, 1.25])  # fractional ids: unusable
    return Request(dense=dense, sparse=sparse, deadline_ms=deadline_ms,
                   request_id=rid)


def reconcile(server: InferenceServer) -> dict:
    """Balance the server's defensive ledgers against its fault injector.

    Only meaningful when the load was otherwise clean (``malformed=0``):
    user-supplied garbage and injected faults are indistinguishable to
    the admission counters.
    """
    injector = server.injector
    stats = server.stats()
    if injector is None:
        return {"checked": False, "passed": True, "checks": {}}
    fired = {site: injector.fired.get(site, 0)
             for site in ("serving.request", "serving.queue",
                          "serving.backend")}
    checks = {
        "request_faults_rejected": {
            "fired": fired["serving.request"],
            "counted": stats["admission"]["rejected"]["dense_non_finite"],
        },
        "queue_faults_shed": {
            "fired": fired["serving.queue"],
            "counted": stats["shed"]["fault"],
        },
        "backend_faults_failed_over": {
            "fired": fired["serving.backend"],
            "counted": stats["backend_failures"],
        },
    }
    for check in checks.values():
        check["passed"] = check["fired"] == check["counted"]
    return {
        "checked": True,
        "passed": all(c["passed"] for c in checks.values()),
        "checks": checks,
    }


def run_load(server: InferenceServer, *, num_requests: int = 1000,
             mean_interarrival_ms: float = 1.0,
             deadline_ms: float | None = None,
             malformed: float = 0.0, seed: int = 0,
             clock: ManualClock | None = None, slo=None) -> dict:
    """Drive the server with a closed-loop synthetic workload.

    The loop alternates arrival bursts and serving steps: simulated time
    advances by the exponential inter-arrival gaps and by each batch's
    *measured* service time, so overload (arrivals faster than the real
    forward pass) genuinely backs the queue up and exercises shedding.
    When the queue signals backpressure the generator halves its offered
    rate until the backlog clears — the closed loop.

    Latency bookkeeping lives in the shared ``serving.latency_ms``
    telemetry histogram (reset at run start so the report is run-local)
    — the same instrument ``repro profile`` snapshots and the SLO engine
    consumes, not a private list. Pass an
    :class:`~repro.telemetry.slo.SLOEngine` as ``slo`` to stream every
    outcome into objective evaluation; its report lands under
    ``report["slo"]``.

    Returns a JSON-ready report: latency percentiles, outcome counts,
    breaker transitions, health, and (with an injector) reconciliation.
    """
    if clock is None:
        clock = server.clock if isinstance(server.clock, ManualClock) \
            else ManualClock()
    if not (0.0 <= malformed <= 1.0):
        raise ValueError(f"malformed must be in [0, 1], got {malformed}")
    rng = as_rng(seed)
    cfg = server.predictor.config
    latency_hist = get_registry().histogram("serving.latency_ms")
    latency_hist.reset()
    outcomes = {"queued": 0, "rejected": 0, "shed": 0}
    served = 0
    degraded_responses = 0
    backpressured = 0
    last_deadline_shed = server.queue.shed_counts()["deadline"]
    sent = 0

    def on_response(resp: dict) -> None:
        nonlocal served, degraded_responses
        served += 1
        degraded_responses += resp["degraded"]
        if slo is not None:
            slo.observe("served", now=clock.now(),
                        latency_ms=resp["latency_ms"],
                        degraded=bool(resp["degraded"]),
                        trace_id=resp.get("trace_id"),
                        request_id=resp["request_id"])

    def flush_deadline_sheds() -> None:
        # Deadline sheds happen inside batch forming; surface the delta
        # to the SLO engine (count-only — the requests are gone).
        nonlocal last_deadline_shed
        cur = server.queue.shed_counts()["deadline"]
        if slo is not None and cur > last_deadline_shed:
            slo.observe("shed", now=clock.now(),
                        count=cur - last_deadline_shed)
        last_deadline_shed = cur

    while sent < num_requests:
        # Burst of arrivals between two serving steps.
        burst = int(rng.integers(1, max(2, server.config.max_batch)))
        for _ in range(min(burst, num_requests - sent)):
            gap = float(rng.exponential(mean_interarrival_ms))
            if server.queue.should_backpressure():
                backpressured += 1
                gap *= 2.0  # the closed-loop client slows down
            clock.advance(gap)
            absolute = (clock.now() + deadline_ms
                        if deadline_ms is not None else None)
            req = _make_request(rng, cfg, sent, absolute,
                                malformed=bool(rng.random() < malformed))
            status = server.submit(req)
            outcomes[status["status"]] += 1
            if slo is not None and status["status"] in ("shed", "rejected"):
                slo.observe(status["status"], now=clock.now(),
                            trace_id=status.get("trace_id"),
                            request_id=status["request_id"])
            sent += 1
        for resp in server.step():
            on_response(resp)
        flush_deadline_sheds()
        # Catch up on simulated time: the batch's real service time.
        clock.advance(server.queue.expected_service_ms)
    for resp in server.drain():
        on_response(resp)
    flush_deadline_sheds()

    stats = server.stats()
    non_finite = stats["final_guard"]
    report = {
        "requests": num_requests,
        "served": served,
        "outcomes": outcomes,
        "latency_ms": {
            "p50": latency_hist.quantile(0.50),
            "p99": latency_hist.quantile(0.99),
            "max": latency_hist.max if latency_hist.count else 0.0,
        },
        "shed": stats["shed"],
        "shed_rate": (outcomes["shed"] + stats["shed"]["deadline"])
        / num_requests,
        "degraded_responses": degraded_responses,
        "backpressure_signals": backpressured,
        "non_finite_outputs": non_finite,
        "breaker_transitions": stats["breaker_transitions"],
        "health": server.healthz(),
        "stats": stats,
        "reconciliation": reconcile(server),
    }
    if slo is not None:
        report["slo"] = slo.report(clock.now())
    if server.injector is not None:
        report["injector"] = server.injector.counters()
    return report
