"""The hardened inference runtime: admission → queue → degradation ladder.

:class:`InferenceServer` wraps a frozen :class:`repro.inference.Predictor`
with the three defensive layers docs/SERVING.md describes:

1. **Admission** (:class:`~repro.serving.admission.RequestSanitizer`) —
   malformed requests are repaired or rejected before touching the model.
2. **Deadline-aware micro-batching**
   (:class:`~repro.serving.queue.MicroBatchQueue`) — overload sheds
   requests instead of growing latency without bound.
3. **Degradation ladder** — per-table embedding backends behind circuit
   breakers: the cached hybrid operator first, the direct TT contraction
   when the cache is poisoned or broken, and finally a frequency-prior
   default row that cannot fail. A rung *fails* when it raises, returns
   non-finite values, or returns implausibly large magnitudes (the
   ``scale``-fault signature); failures trip the rung's breaker and, when
   the backend exposes the PR-1 ``scrub()`` hook, trigger a repair so the
   rung can recover. The server therefore keeps answering — at reduced
   fidelity — no matter which backend is poisoned.

Chaos-testable by construction: a
:class:`~repro.reliability.fault_injection.FaultInjector` is probed at
``serving.request`` (corrupt inbound payload), ``serving.queue`` (lost
queue entry) and ``serving.backend`` (poisoned backend output), and every
defensive action is counted in the shared metrics registry so
``repro serve-bench`` can reconcile them against the injector; ladder
descents specifically are counted per table and rung under
``serving.fallback{table=,rung=}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter_ns

import numpy as np

from repro.data.batching import make_offsets
from repro.inference.predictor import Predictor, _sigmoid
from repro.serving.admission import Rejection, Request, RequestSanitizer
from repro.serving.breaker import CircuitBreaker
from repro.serving.queue import MicroBatchQueue, monotonic_ms
from repro.telemetry import (
    annotate_span,
    finish_request,
    get_registry,
    get_request_tracer,
    traced_event,
    traced_span,
)

__all__ = ["ServerConfig", "InferenceServer", "Rung", "TableLadder",
           "frequency_prior_row"]

# A pooled embedding magnitude beyond this is treated as corruption even
# though it is finite (catches "scale"-kind faults before the towers
# launder them into a confident wrong answer).
MAGNITUDE_LIMIT = 1e15

# Rows sampled for a default-row prior when no frequency tracker exists.
_PRIOR_SAMPLE_ROWS = 256
# Hot rows averaged when a frequency tracker is available.
_PRIOR_HOT_ROWS = 64


@dataclass(frozen=True)
class ServerConfig:
    """Tuning knobs for the serving runtime (docs/SERVING.md)."""

    oov_policy: str = "clamp"
    max_depth: int = 64
    max_batch: int = 32
    default_deadline_ms: float = 50.0
    high_watermark: float = 0.8
    failure_threshold: int = 3
    breaker_window: int = 20
    cooldown: int = 25
    half_open_successes: int = 2


class Rung:
    """One ladder level: a named backend call guarded by a breaker."""

    def __init__(self, name: str, compute, breaker: CircuitBreaker):
        self.name = name
        self.compute = compute  # (indices, offsets) -> (bags, dim) pooled
        self.breaker = breaker


class TableLadder:
    """Degradation ladder for one embedding table.

    ``serve`` walks the rungs top-down, skipping open breakers, validating
    every output, and falling through to the default row — which is a
    constant held by the server and therefore cannot fail.
    """

    def __init__(self, table: int, rungs: list[Rung], default_row: np.ndarray,
                 mode: str, scrub=None, injector=None):
        self.table = table
        self.rungs = rungs
        self.default_row = default_row
        self.mode = mode
        self.scrub = scrub
        self.injector = injector
        reg = get_registry()
        self._fallback = {
            rung.name: reg.counter("serving.fallback",
                                   table=str(table), rung=rung.name)
            for rung in rungs[1:]
        }
        self._fallback["default_row"] = reg.counter(
            "serving.fallback", table=str(table), rung="default_row"
        )
        self._failures = reg.counter("serving.backend_failures",
                                     table=str(table))
        self._scrubs = reg.counter("serving.scrubs", table=str(table))

    # ------------------------------------------------------------------ #

    def _default_pooled(self, counts: np.ndarray) -> np.ndarray:
        pooled = np.tile(self.default_row, (counts.size, 1))
        if self.mode == "sum":
            pooled = pooled * counts[:, None]
        return pooled

    @staticmethod
    def _valid(pooled: np.ndarray) -> bool:
        return bool(np.isfinite(pooled).all()
                    and np.abs(pooled).max(initial=0.0) < MAGNITUDE_LIMIT)

    def serve(self, indices: np.ndarray,
              offsets: np.ndarray) -> tuple[np.ndarray, str]:
        """Pool one table's bags; returns ``(pooled, rung_name)``."""
        for level, rung in enumerate(self.rungs):
            if not rung.breaker.allow():
                continue
            try:
                with traced_span("serving.pooled", table=str(self.table),
                                 rung=rung.name):
                    annotate_span(breaker=rung.breaker.state,
                                  bags=int(offsets.size - 1))
                    pooled = np.asarray(rung.compute(indices, offsets),
                                        dtype=np.float64)
            except Exception as exc:  # noqa: BLE001 - the ladder IS the handler
                self._record_failure(rung, repr(exc))
                continue
            if self.injector is not None:
                self.injector.corrupt("serving.backend", pooled)
            if not self._valid(pooled):
                self._record_failure(rung, "non-finite or implausible output")
                continue
            rung.breaker.record_success()
            if level > 0:
                self._fallback[rung.name].inc()
            return pooled, rung.name
        counts = np.diff(offsets)
        self._fallback["default_row"].inc()
        return self._default_pooled(counts), "default_row"

    def _record_failure(self, rung: Rung, detail: str) -> None:
        rung.breaker.record_failure()
        self._failures.inc()
        traced_event("serving.backend_failure", table=self.table,
                     rung=rung.name, detail=detail,
                     breaker_state=rung.breaker.state)
        if self.scrub is not None:
            repaired = self.scrub()
            if repaired:
                self._scrubs.inc(int(repaired))

    # ------------------------------------------------------------------ #

    def breakers(self) -> list[CircuitBreaker]:
        return [rung.breaker for rung in self.rungs]

    def fallback_counts(self) -> dict[str, int]:
        return {name: c.value for name, c in self._fallback.items()}

    @property
    def backend_failures(self) -> int:
        return self._failures.value

    @property
    def scrubbed_rows(self) -> int:
        return self._scrubs.value


def frequency_prior_row(emb, dim: int) -> np.ndarray:
    """Default row for one table: a frequency-weighted mean embedding.

    With a :class:`~repro.cache.lfu.LFUTracker` attached (the cached TT
    operator), the prior is the access-count-weighted average of the hot
    rows — the best constant guess for a random future lookup under the
    observed Zipf traffic. Without one, it is the plain mean of a row
    sample. Always finite: non-finite inputs are zeroed before averaging.
    """
    tracker = getattr(emb, "tracker", None)
    num_rows = emb.num_rows
    ids = None
    weights = None
    if tracker is not None:
        hot = np.asarray(tracker.top_k(_PRIOR_HOT_ROWS), dtype=np.int64)
        if hot.size:
            ids = hot
            weights = np.maximum(np.asarray(tracker.count(hot),
                                            dtype=np.float64), 1.0)
    if ids is None:
        ids = np.arange(min(_PRIOR_SAMPLE_ROWS, num_rows), dtype=np.int64)
        weights = np.ones(ids.size)
    # lookup() materialises rows without touching trackers or backward
    # caches; operators lacking it fall back to single-index-bag forward.
    lookup = getattr(emb, "lookup", None)
    if lookup is not None:
        rows = lookup(ids)
    else:
        rows = emb.forward(ids, np.arange(ids.size + 1, dtype=np.int64))
    rows = np.nan_to_num(rows, nan=0.0, posinf=0.0, neginf=0.0)
    row = (rows * weights[:, None]).sum(axis=0) / weights.sum()
    if not np.isfinite(row).all():  # pragma: no cover - belt and braces
        row = np.zeros(dim)
    return row


class InferenceServer:
    """Robust serving runtime in front of a :class:`Predictor`.

    Parameters
    ----------
    predictor:
        The frozen model to serve.
    config:
        :class:`ServerConfig` tuning knobs.
    injector:
        Optional fault injector; register any of ``serving.request``,
        ``serving.queue``, ``serving.backend`` to chaos-test the ladder.
    clock:
        Monotonic-millisecond callable (defaults to wall time; tests and
        ``serve-bench`` pass a :class:`~repro.serving.queue.ManualClock`).
    """

    def __init__(self, predictor: Predictor, *,
                 config: ServerConfig = ServerConfig(),
                 injector=None, clock=None):
        self.predictor = predictor
        self.config = config
        self.injector = injector
        self.clock = clock if clock is not None else monotonic_ms
        self.sanitizer = RequestSanitizer(predictor.config,
                                          oov_policy=config.oov_policy)
        self.queue = MicroBatchQueue(
            max_depth=config.max_depth, max_batch=config.max_batch,
            default_deadline_ms=config.default_deadline_ms,
            high_watermark=config.high_watermark,
            clock=self.clock, injector=injector,
        )
        self.ladders = [
            self._build_ladder(t, emb)
            for t, emb in enumerate(predictor.embeddings)
        ]
        reg = get_registry()
        self._requests = reg.counter("serving.requests")
        self._served = reg.counter("serving.served")
        self._batches = reg.counter("serving.batches")
        self._final_guard = reg.counter("serving.final_guard")
        self._latency = reg.histogram(
            "serving.latency_ms",
            bounds=(0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0,
                    500.0, 1000.0),
        )
        self._ready = all(np.isfinite(lad.default_row).all()
                          for lad in self.ladders)

    # ------------------------------------------------------------------ #
    # Ladder construction
    # ------------------------------------------------------------------ #

    def _breaker(self, table: int, rung: str) -> CircuitBreaker:
        cfg = self.config
        return CircuitBreaker(
            f"t{table}.{rung}",
            failure_threshold=cfg.failure_threshold,
            window=cfg.breaker_window, cooldown=cfg.cooldown,
            half_open_successes=cfg.half_open_successes,
        )

    def _build_ladder(self, table: int, emb) -> TableLadder:
        rungs = [Rung("primary", emb.forward, self._breaker(table, "primary"))]
        tt = getattr(emb, "tt", None)
        if tt is not None:
            # The cached operator's escape hatch: contract the TT cores
            # directly, bypassing a poisoned uncompressed cache.
            rungs.append(Rung("tt_direct", tt.forward,
                              self._breaker(table, "tt_direct")))
        mode = getattr(emb, "mode", "sum")
        default_row = frequency_prior_row(emb, self.predictor.config.emb_dim)
        return TableLadder(table, rungs, default_row, mode,
                           scrub=getattr(emb, "scrub", None),
                           injector=self.injector)

    # ------------------------------------------------------------------ #
    # Request path
    # ------------------------------------------------------------------ #

    def submit(self, request: Request) -> dict:
        """Admit one request; returns a status document.

        ``{"status": "queued" | "rejected" | "shed", ...}`` — a rejected
        request names its (counted) reason; a shed one names the shed
        class. Backpressure is surfaced as ``"backpressure": True`` so
        closed-loop clients can slow down.
        """
        self._requests.inc()
        if self.injector is not None:
            spec = self.injector.draw("serving.request")
            if spec is not None:
                dense = np.array(request.dense, dtype=np.float64, copy=True)
                self.injector.apply(spec, dense)
                request = Request(dense=dense, sparse=request.sparse,
                                  deadline_ms=request.deadline_ms,
                                  request_id=request.request_id)
        rt = get_request_tracer()
        ctx = rt.maybe_start(request.request_id, now=self.clock())
        with rt.scope([ctx]):
            with traced_span("serving.admission"):
                admitted = self.sanitizer.sanitize(request)
        if isinstance(admitted, Rejection):
            rt.finish(ctx, "rejected", now=self.clock(),
                      reason=admitted.reason)
            return {"status": "rejected", "reason": admitted.reason,
                    "detail": admitted.detail,
                    "request_id": admitted.request_id,
                    **({"trace_id": ctx.trace_id} if ctx else {})}
        outcome = self.queue.submit(admitted)
        if outcome != "queued":
            rt.finish(ctx, "shed", now=self.clock(),
                      reason=outcome.removeprefix("shed_"))
            return {"status": "shed", "reason": outcome.removeprefix("shed_"),
                    "request_id": admitted.request_id,
                    **({"trace_id": ctx.trace_id} if ctx else {})}
        if ctx is not None:
            admitted.trace_ctx = ctx
        return {"status": "queued", "request_id": admitted.request_id,
                "repairs": list(admitted.repairs),
                "backpressure": self.queue.should_backpressure()}

    def step(self) -> list[dict]:
        """Serve one micro-batch from the queue; returns the responses."""
        batch = self.queue.next_batch()
        if not batch:
            return []
        rt = get_request_tracer()
        ctxs = [c for r in batch
                if (c := getattr(r, "trace_ctx", None)) is not None]
        formed_at = self.clock()
        start_ns = perf_counter_ns()
        with rt.scope(ctxs):
            for req in batch:
                ctx = getattr(req, "trace_ctx", None)
                if ctx is not None:
                    ctx.record_span("queue.wait", req.arrival_ms, formed_at)
            with traced_span("serving.batch"):
                annotate_span(batch_size=len(batch))
                dense = np.stack([r.dense for r in batch])
                pooled = []
                served_by: dict[int, str] = {}
                for t, ladder in enumerate(self.ladders):
                    counts = np.array([r.values[t].size for r in batch],
                                      dtype=np.int64)
                    indices = (np.concatenate([r.values[t] for r in batch])
                               if counts.sum()
                               else np.empty(0, dtype=np.int64))
                    vecs, rung = ladder.serve(indices, make_offsets(counts))
                    pooled.append(vecs)
                    if rung != "primary":
                        served_by[t] = rung
                with traced_span("serving.towers"):
                    probs = _sigmoid(
                        self.predictor.logits_from_pooled(dense, pooled)
                    )
            bad = ~np.isfinite(probs)
            if bad.any():  # the last line of defence; should be unreachable
                self._final_guard.inc(int(bad.sum()))
                traced_event("serving.final_guard", count=int(bad.sum()))
                probs = np.where(bad, 0.5, probs)
        service_ms = (perf_counter_ns() - start_ns) / 1e6
        self.queue.observe_service(service_ms)
        self._batches.inc()
        self._served.inc(len(batch))
        responses = []
        for req, prob in zip(batch, probs):
            latency = (formed_at - req.arrival_ms) + service_ms
            self._latency.observe(latency)
            resp = {
                "request_id": req.request_id,
                "prob": float(prob),
                "latency_ms": latency,
                "degraded": bool(served_by),
                "served_by": dict(served_by),
                "repairs": list(req.repairs),
            }
            ctx = getattr(req, "trace_ctx", None)
            if ctx is not None:
                resp["trace_id"] = ctx.trace_id
            finish_request(req, "served", now=self.clock(),
                           latency_ms=latency, degraded=bool(served_by))
            responses.append(resp)
        return responses

    def drain(self) -> list[dict]:
        """Serve micro-batches until the queue is empty."""
        responses = []
        while self.queue.depth:
            responses.extend(self.step())
        return responses

    # ------------------------------------------------------------------ #
    # Probes & stats
    # ------------------------------------------------------------------ #

    def breaker_snapshots(self) -> list[dict]:
        return [b.snapshot() for lad in self.ladders for b in lad.breakers()]

    def breaker_transitions(self) -> list[dict]:
        return [
            {"breaker": b.name, "from": a, "to": c}
            for lad in self.ladders for b in lad.breakers()
            for a, c in b.transitions
        ]

    def healthz(self) -> dict:
        """Liveness/condition probe: is the server answering, and how well?"""
        open_breakers = [
            b.name for lad in self.ladders for b in lad.breakers()
            if b.state != "closed"
        ]
        return {
            "status": "degraded" if open_breakers else "ok",
            "open_breakers": open_breakers,
            "queue_depth": self.queue.depth,
            "expected_service_ms": self.queue.expected_service_ms,
            "shed": self.queue.shed_counts(),
        }

    def readyz(self) -> dict:
        """Readiness probe: safe to route traffic here?"""
        return {"ready": bool(self._ready and self.ladders)}

    def stats(self) -> dict:
        """Every serving counter, reconciliation-ready (serve-bench).

        Degradation is attributed per table, not just in aggregate: the
        ``fallbacks``/``backend_failures_by_table``/``scrubs_by_table``
        breakdowns let a shard roll-up (docs/SERVING.md, sharding) point
        at the table whose ladder is degrading rather than a lump sum.
        """
        lat = self._latency
        return {
            "requests": self._requests.value,
            "served": self._served.value,
            "batches": self._batches.value,
            "admission": self.sanitizer.stats(),
            "shed": self.queue.shed_counts(),
            "fallbacks": {
                str(lad.table): lad.fallback_counts() for lad in self.ladders
            },
            "backend_failures": sum(lad.backend_failures
                                    for lad in self.ladders),
            "backend_failures_by_table": {
                str(lad.table): lad.backend_failures for lad in self.ladders
                if lad.backend_failures
            },
            "scrubbed_rows": sum(lad.scrubbed_rows for lad in self.ladders),
            "scrubs_by_table": {
                str(lad.table): lad.scrubbed_rows for lad in self.ladders
                if lad.scrubbed_rows
            },
            "final_guard": self._final_guard.value,
            "breaker_transitions": self.breaker_transitions(),
            "latency_ms": lat.summary(),
        }
