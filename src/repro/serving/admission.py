"""Admission control: validate, repair or reject inbound requests.

Nothing downstream of this layer ever sees a malformed input. The
sanitizer enforces the same invariants :func:`repro.utils.validation.check_csr`
and :class:`repro.data.batching.Batch` demand, but — unlike the model
operators, which *raise* — it repairs what can be repaired and rejects the
rest, because a production front door must answer every request with
something better than a stack trace:

- out-of-vocabulary categorical ids are **clamped** to the table edge,
  **hashed** onto a valid row (splitmix64, the same mixing hash
  :class:`repro.baselines.hashing.HashedEmbeddingBag` uses) or the request
  is **rejected**, per policy;
- malformed CSR ``offsets`` are repaired to satisfy the batching
  invariants (start at 0, end at ``len(indices)``, non-decreasing, one
  slot per bag);
- non-finite dense features are always rejected — a NaN admitted here
  survives ReLU masking and would silently poison the score.

Every decision increments a per-reason counter in the shared metrics
registry (``serving.rejected{reason=...}``, ``serving.sanitized{action=...}``)
so shed/sanitized counts can be reconciled against a fault injector's
per-site counters (the ``serve-bench`` chaos proof).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cache.hashtable import splitmix64
from repro.telemetry import get_registry
from repro.utils.validation import check_csr

__all__ = [
    "OOV_POLICIES",
    "REJECT_REASONS",
    "Request",
    "SanitizedRequest",
    "Rejection",
    "RequestSanitizer",
    "repair_offsets",
]

OOV_POLICIES = ("clamp", "hash", "reject")

REJECT_REASONS = (
    "dense_shape",
    "dense_non_finite",
    "table_count",
    "ids_dtype",
    "oov",
)


@dataclass
class Request:
    """One scoring request: a user/context plus one bag per table.

    Attributes
    ----------
    dense:
        ``(num_dense,)`` continuous features.
    sparse:
        One entry per categorical table: a 1-D id array, a scalar id, or
        ``None`` for an empty bag.
    deadline_ms:
        Absolute deadline on the server clock (``None`` = use the queue's
        default relative deadline).
    request_id:
        Caller-chosen correlation id, echoed in the response.
    """

    dense: np.ndarray
    sparse: list
    deadline_ms: float | None = None
    request_id: int = 0


@dataclass
class SanitizedRequest:
    """An admitted request: canonical arrays, all invariants guaranteed."""

    dense: np.ndarray                 # (num_dense,) float64, finite
    values: list[np.ndarray]          # per-table int64 ids, all in range
    request_id: int = 0
    deadline_ms: float | None = None
    repairs: tuple[str, ...] = ()     # sanitizer actions applied, if any
    arrival_ms: float = 0.0           # stamped by the queue


@dataclass
class Rejection:
    """A refused request, with the (counted) reason."""

    reason: str
    detail: str = ""
    request_id: int = 0


@dataclass
class _Counters:
    rejected: dict = field(default_factory=dict)
    sanitized: dict = field(default_factory=dict)


def repair_offsets(indices: np.ndarray, offsets: np.ndarray,
                   num_bags: int) -> tuple[np.ndarray, np.ndarray, bool]:
    """Coerce an ``(indices, offsets)`` pair into a valid CSR description.

    Enforces the invariants :func:`repro.utils.validation.check_csr`
    checks — ``offsets[0] == 0``, ``offsets[-1] == len(indices)``,
    non-decreasing, exactly ``num_bags + 1`` slots — by rebuilding the
    parts that are broken instead of raising. Bag *boundaries* inside a
    malformed region are necessarily a guess (clipped into range and made
    monotone); bag membership of every index is preserved in total.

    Returns ``(indices, offsets, repaired)`` with both arrays int64.
    """
    indices = np.atleast_1d(np.asarray(indices)).reshape(-1)
    indices = indices.astype(np.int64, copy=False)
    offsets = np.atleast_1d(np.asarray(offsets)).reshape(-1)
    if not np.issubdtype(offsets.dtype, np.integer):
        with np.errstate(invalid="ignore"):
            offsets = np.nan_to_num(
                np.asarray(offsets, dtype=np.float64), nan=0.0,
                posinf=indices.size, neginf=0.0,
            ).astype(np.int64)
    else:
        offsets = offsets.astype(np.int64, copy=False)

    repaired = False
    if offsets.size != num_bags + 1:
        # Wrong bag count: keep whatever prefix lines up, pad the tail so
        # missing bags are empty and surplus bags are dropped.
        fixed = np.full(num_bags + 1, indices.size, dtype=np.int64)
        keep = min(offsets.size, num_bags)  # never overwrite the endpoint
        fixed[:keep] = offsets[:keep]
        offsets = fixed
        repaired = True
    clipped = np.clip(offsets, 0, indices.size)
    monotone = np.maximum.accumulate(clipped)
    if monotone[0] != 0 or monotone[-1] != indices.size \
            or not np.array_equal(monotone, offsets):
        repaired = True
    offsets = monotone
    offsets[0] = 0
    offsets[-1] = indices.size
    # One more pass: forcing the endpoints can re-break monotonicity at
    # the very edges (e.g. offsets[1] > offsets[-1] was clipped above).
    offsets = np.maximum.accumulate(offsets)
    offsets = np.minimum(offsets, indices.size)
    return indices, offsets, repaired


class RequestSanitizer:
    """Validate and repair requests against a model's input contract.

    Parameters
    ----------
    config:
        :class:`repro.models.config.DLRMConfig` naming the per-table
        cardinalities and dense width the model was built with.
    oov_policy:
        What to do with an out-of-vocabulary (negative or >= cardinality)
        id: ``"clamp"`` to the nearest valid row, ``"hash"`` onto a valid
        row via splitmix64, or ``"reject"`` the request.
    """

    def __init__(self, config, *, oov_policy: str = "clamp"):
        if oov_policy not in OOV_POLICIES:
            raise ValueError(
                f"oov_policy must be one of {OOV_POLICIES}, got {oov_policy!r}"
            )
        self.config = config
        self.oov_policy = oov_policy
        reg = get_registry()
        self._rejected = {
            reason: reg.counter("serving.rejected", reason=reason)
            for reason in REJECT_REASONS
        }
        self._sanitized = {
            action: reg.counter("serving.sanitized", action=action)
            for action in ("oov_clamped", "oov_hashed", "offsets_repaired")
        }
        self._admitted = reg.counter("serving.admitted")

    # ------------------------------------------------------------------ #

    def stats(self) -> dict:
        return {
            "admitted": self._admitted.value,
            "rejected": {r: c.value for r, c in self._rejected.items()},
            "sanitized": {a: c.value for a, c in self._sanitized.items()},
        }

    @property
    def total_rejected(self) -> int:
        return sum(c.value for c in self._rejected.values())

    def _reject(self, reason: str, detail: str, request_id: int) -> Rejection:
        self._rejected[reason].inc()
        return Rejection(reason=reason, detail=detail, request_id=request_id)

    # ------------------------------------------------------------------ #

    def _sanitize_ids(self, values, cardinality: int):
        """Return ``(int64 ids in range, actions) | None`` (None = reject)."""
        if values is None:
            return np.empty(0, dtype=np.int64), ()
        arr = np.atleast_1d(np.asarray(values)).reshape(-1)
        if not np.issubdtype(arr.dtype, np.integer):
            if not np.issubdtype(arr.dtype, np.floating):
                return None
            if not np.isfinite(arr).all() or (arr != np.floor(arr)).any():
                return None  # NaN ids or fractional ids are garbage, not typos
        arr = arr.astype(np.int64)
        oov = (arr < 0) | (arr >= cardinality)
        if not oov.any():
            return arr, ()
        if self.oov_policy == "reject":
            return None
        if self.oov_policy == "clamp":
            arr = np.clip(arr, 0, cardinality - 1)
            self._sanitized["oov_clamped"].inc(int(oov.sum()))
            return arr, ("oov_clamped",)
        hashed = (splitmix64(arr[oov]) % np.uint64(cardinality)).astype(np.int64)
        arr = arr.copy()
        arr[oov] = hashed
        self._sanitized["oov_hashed"].inc(int(oov.sum()))
        return arr, ("oov_hashed",)

    def sanitize(self, request: Request) -> SanitizedRequest | Rejection:
        """Admit one request, repairing or rejecting as policy dictates."""
        cfg = self.config
        rid = request.request_id
        dense = np.asarray(request.dense, dtype=np.float64).reshape(-1)
        if dense.shape[0] != cfg.num_dense:
            return self._reject(
                "dense_shape",
                f"expected {cfg.num_dense} dense features, got {dense.shape[0]}",
                rid,
            )
        if not np.isfinite(dense).all():
            return self._reject("dense_non_finite",
                                "dense features contain NaN/Inf", rid)
        if len(request.sparse) != cfg.num_tables:
            return self._reject(
                "table_count",
                f"expected {cfg.num_tables} sparse entries, "
                f"got {len(request.sparse)}",
                rid,
            )
        values: list[np.ndarray] = []
        repairs: list[str] = []
        for t, entry in enumerate(request.sparse):
            out = self._sanitize_ids(entry, cfg.table_sizes[t])
            if out is None:
                reason = "oov" if self.oov_policy == "reject" else "ids_dtype"
                return self._reject(
                    reason, f"table {t}: unusable categorical ids", rid
                )
            ids, actions = out
            values.append(ids)
            repairs.extend(actions)
        self._admitted.inc()
        return SanitizedRequest(
            dense=dense, values=values, request_id=rid,
            deadline_ms=request.deadline_ms, repairs=tuple(dict.fromkeys(repairs)),
        )

    # ------------------------------------------------------------------ #

    def sanitize_table_csr(self, table: int, indices: np.ndarray,
                           offsets: np.ndarray, num_bags: int
                           ) -> tuple[np.ndarray, np.ndarray] | None:
        """Repair one table's pre-batched CSR pair (batch submission path).

        Offsets are repaired via :func:`repair_offsets`; ids go through
        the per-policy OOV treatment. Returns ``None`` when the ids are
        unusable under the policy, else a pair that passes ``check_csr``.
        """
        out = self._sanitize_ids(indices, self.config.table_sizes[table])
        if out is None:
            return None
        ids, _ = out
        ids, offsets, repaired = repair_offsets(ids, offsets, num_bags)
        if repaired:
            self._sanitized["offsets_repaired"].inc()
        # The repaired pair must satisfy the operator contract by
        # construction; check_csr is the executable proof.
        return check_csr(ids, offsets, self.config.table_sizes[table])
