"""Learning-rate schedules (the MLPerf-DLRM warmup + polynomial decay).

The MLPerf-DLRM reference trains Terabyte with ``--lr-num-warmup-steps``
and ``--lr-num-decay-steps`` (linear warmup from 0 to the base LR, then
polynomial decay of power 2 down to zero). ``LRScheduler`` wraps any of
this package's optimizers (which expose a mutable ``lr`` attribute) and
applies a schedule per step.
"""

from __future__ import annotations

from collections.abc import Callable

__all__ = [
    "constant_schedule",
    "warmup_poly_decay_schedule",
    "step_decay_schedule",
    "LRScheduler",
]

Schedule = Callable[[int], float]  # step -> multiplier in [0, 1]


def constant_schedule() -> Schedule:
    """Multiplier 1.0 forever (plain SGD, the Kaggle configuration)."""
    return lambda step: 1.0


def warmup_poly_decay_schedule(*, warmup_steps: int, decay_start_step: int,
                               decay_steps: int, power: float = 2.0,
                               end_multiplier: float = 0.0) -> Schedule:
    """MLPerf-DLRM schedule: linear warmup, plateau, polynomial decay.

    - steps ``[0, warmup_steps)``: multiplier rises linearly ``1/w .. 1``;
    - steps ``[warmup_steps, decay_start_step)``: multiplier 1;
    - steps ``[decay_start_step, decay_start_step + decay_steps)``:
      ``((1 - progress) ** power)`` decaying to ``end_multiplier``;
    - afterwards: ``end_multiplier``.
    """
    if warmup_steps < 0 or decay_steps < 0:
        raise ValueError("warmup_steps and decay_steps must be >= 0")
    if decay_start_step < warmup_steps:
        raise ValueError(
            f"decay_start_step ({decay_start_step}) must be >= warmup_steps "
            f"({warmup_steps})"
        )
    if not (0.0 <= end_multiplier <= 1.0):
        raise ValueError(f"end_multiplier must be in [0, 1], got {end_multiplier}")

    def schedule(step: int) -> float:
        if step < warmup_steps:
            return (step + 1) / warmup_steps
        if step < decay_start_step or decay_steps == 0:
            return 1.0
        progress = (step - decay_start_step) / decay_steps
        if progress >= 1.0:
            return end_multiplier
        return end_multiplier + (1.0 - end_multiplier) * (1.0 - progress) ** power

    return schedule


def step_decay_schedule(*, decay_every: int, factor: float = 0.5,
                        min_multiplier: float = 1e-4) -> Schedule:
    """Classic staircase decay: multiply by ``factor`` every N steps."""
    if decay_every < 1:
        raise ValueError(f"decay_every must be >= 1, got {decay_every}")
    if not (0.0 < factor < 1.0):
        raise ValueError(f"factor must be in (0, 1), got {factor}")

    def schedule(step: int) -> float:
        return max(min_multiplier, factor ** (step // decay_every))

    return schedule


class LRScheduler:
    """Applies a schedule to an optimizer's ``lr`` before each step.

    Usage::

        opt = SparseSGD(model.parameters(), lr=0.1)
        sched = LRScheduler(opt, warmup_poly_decay_schedule(
            warmup_steps=100, decay_start_step=1000, decay_steps=5000))
        ...
        sched.step()   # call once per training iteration, before opt.step()
    """

    def __init__(self, optimizer, schedule: Schedule):
        if not hasattr(optimizer, "lr"):
            raise TypeError("optimizer must expose a mutable 'lr' attribute")
        self.optimizer = optimizer
        self.schedule = schedule
        self.base_lr = float(optimizer.lr)
        self._step = 0

    @property
    def current_lr(self) -> float:
        return float(self.optimizer.lr)

    def step(self) -> float:
        """Advance the schedule; returns the LR now set on the optimizer."""
        lr = self.base_lr * self.schedule(self._step)
        self.optimizer.lr = lr
        self._step += 1
        return lr
