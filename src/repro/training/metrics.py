"""Evaluation metrics: accuracy, BCE loss, ROC AUC.

The paper reports "test accuracy (%)" (0.5-thresholded click prediction)
and BCE loss; AUC is included because it is the standard CTR metric and is
threshold-free (useful on synthetic data whose base rate may drift from
Criteo's).
"""

from __future__ import annotations

import numpy as np

from repro.ops.loss import bce_with_logits

__all__ = ["accuracy", "bce_loss", "roc_auc", "normalized_entropy"]


def accuracy(logits: np.ndarray, labels: np.ndarray, *, threshold: float = 0.5) -> float:
    """Fraction of correct 0/1 predictions at a probability threshold."""
    logits = np.asarray(logits, dtype=np.float64).reshape(-1)
    labels = np.asarray(labels, dtype=np.float64).reshape(-1)
    if logits.shape != labels.shape:
        raise ValueError(f"shapes differ: {logits.shape} vs {labels.shape}")
    if logits.size == 0:
        raise ValueError("empty inputs")
    # threshold on probability == threshold on logit via logit transform
    logit_thresh = np.log(threshold / (1.0 - threshold))
    preds = (logits >= logit_thresh).astype(np.float64)
    return float((preds == labels).mean())


def bce_loss(logits: np.ndarray, labels: np.ndarray) -> float:
    """Mean binary cross-entropy (same computation as the training loss)."""
    loss, _ = bce_with_logits(logits, labels)
    return loss


def normalized_entropy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Normalized entropy (NE): BCE divided by the base-rate entropy.

    The CTR metric used in Facebook's DLRM literature (He et al. 2014):
    NE < 1 means the model beats always-predicting the base click rate;
    lower is better. Unlike raw BCE it is comparable across datasets with
    different click rates. Returns ``inf`` when the labels are all one
    class (the base-rate entropy is zero).
    """
    labels = np.asarray(labels, dtype=np.float64).reshape(-1)
    loss, _ = bce_with_logits(logits, labels)
    p = labels.mean()
    if p <= 0.0 or p >= 1.0:
        return float("inf")
    base_entropy = -(p * np.log(p) + (1 - p) * np.log(1 - p))
    return float(loss / base_entropy)


def roc_auc(logits: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve via the Mann-Whitney rank statistic.

    Ties in scores receive average ranks (the exact AUC definition).
    Returns 0.5 when either class is absent.
    """
    scores = np.asarray(logits, dtype=np.float64).reshape(-1)
    labels = np.asarray(labels, dtype=np.float64).reshape(-1)
    if scores.shape != labels.shape:
        raise ValueError(f"shapes differ: {scores.shape} vs {labels.shape}")
    pos = labels > 0.5
    n_pos = int(pos.sum())
    n_neg = scores.size - n_pos
    if n_pos == 0 or n_neg == 0:
        return 0.5
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(scores.size, dtype=np.float64)
    sorted_scores = scores[order]
    # average ranks over tied groups
    _, starts, counts = np.unique(sorted_scores, return_index=True, return_counts=True)
    avg = starts + (counts - 1) / 2.0 + 1.0  # 1-based average rank per group
    group_of = np.repeat(np.arange(starts.size), counts)
    ranks[order] = avg[group_of]
    rank_sum_pos = ranks[pos].sum()
    u = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return float(u / (n_pos * n_neg))
