"""Training and evaluation loops plus metrics."""

from repro.training.metrics import accuracy, bce_loss, roc_auc
from repro.training.schedules import (
    LRScheduler,
    constant_schedule,
    step_decay_schedule,
    warmup_poly_decay_schedule,
)
from repro.training.trainer import EvalResult, TrainResult, Trainer

__all__ = [
    "Trainer",
    "TrainResult",
    "EvalResult",
    "accuracy",
    "bce_loss",
    "roc_auc",
    "LRScheduler",
    "constant_schedule",
    "warmup_poly_decay_schedule",
    "step_decay_schedule",
]
