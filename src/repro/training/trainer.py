"""Training/evaluation driver for DLRM-style models.

One :class:`Trainer` owns a model, an optimizer and a data source, and
provides the timed training loop every timing experiment (Fig. 7, Fig. 10)
builds on. Timing uses ``time.perf_counter`` around the full
forward/loss/backward/step iteration, mirroring the paper's ms/iter
numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.data.batching import Batch
from repro.models.dlrm import DLRM
from repro.ops.loss import bce_with_logits
from repro.ops.optim import SparseSGD
from repro.training.metrics import accuracy, bce_loss, normalized_entropy, roc_auc

__all__ = ["Trainer", "TrainResult", "EvalResult"]


@dataclass
class TrainResult:
    """Summary of one training run."""

    iterations: int = 0
    total_time_s: float = 0.0
    losses: list[float] = field(default_factory=list)

    @property
    def ms_per_iter(self) -> float:
        return 1000.0 * self.total_time_s / self.iterations if self.iterations else 0.0

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    def smoothed_loss(self, window: int = 50) -> float:
        """Mean loss over the trailing window (noise-robust progress signal)."""
        if not self.losses:
            return float("nan")
        return float(np.mean(self.losses[-window:]))


@dataclass
class EvalResult:
    """Validation metrics over a held-out sample stream."""

    accuracy: float
    bce: float
    auc: float
    num_samples: int
    ne: float = float("nan")  # normalized entropy (He et al. 2014)

    def __str__(self) -> str:  # pragma: no cover - formatting
        return (
            f"acc={self.accuracy * 100:.3f}% bce={self.bce:.4f} "
            f"auc={self.auc:.4f} ne={self.ne:.4f} (n={self.num_samples})"
        )


class Trainer:
    """Minibatch trainer with BCE-with-logits loss.

    Parameters
    ----------
    model:
        A :class:`~repro.models.dlrm.DLRM` (baseline or TT-Rec variant).
    lr:
        SGD learning rate (MLPerf-DLRM Kaggle default 0.1).
    optimizer:
        Optional pre-built optimizer; defaults to
        :class:`~repro.ops.optim.SparseSGD` over the model's parameters.
    """

    def __init__(self, model: DLRM, *, lr: float = 0.1, optimizer=None):
        self.model = model
        self.optimizer = optimizer if optimizer is not None else SparseSGD(
            model.parameters(), lr=lr
        )

    def train_step(self, batch: Batch) -> float:
        """One forward/backward/update step; returns the batch loss.

        Raises :class:`FloatingPointError` if the loss is NaN/inf —
        catching divergence at the step it happens instead of corrupting
        every parameter and failing silently later.
        """
        self.optimizer.zero_grad()
        logits = self.model.forward(
            batch.dense, batch.sparse, batch.per_sample_weights
        )
        loss, grad = bce_with_logits(logits, batch.labels)
        if not np.isfinite(loss):
            raise FloatingPointError(
                f"training diverged: loss={loss!r}; lower the learning rate "
                "or check the input data for non-finite values"
            )
        self.model.backward(grad)
        self.optimizer.step()
        return loss

    def train(self, batches, *, max_iters: int | None = None,
              log_every: int | None = None, log_fn=print) -> TrainResult:
        """Train over an iterable of batches, timing the whole loop."""
        result = TrainResult()
        start = time.perf_counter()
        for i, batch in enumerate(batches):
            if max_iters is not None and i >= max_iters:
                break
            loss = self.train_step(batch)
            result.losses.append(loss)
            result.iterations += 1
            if log_every and (i + 1) % log_every == 0:
                log_fn(
                    f"iter {i + 1}: loss={np.mean(result.losses[-log_every:]):.4f}"
                )
        result.total_time_s = time.perf_counter() - start
        return result

    def evaluate(self, batches, *, max_iters: int | None = None) -> EvalResult:
        """Forward-only evaluation accumulating accuracy/BCE/AUC."""
        all_logits: list[np.ndarray] = []
        all_labels: list[np.ndarray] = []
        for i, batch in enumerate(batches):
            if max_iters is not None and i >= max_iters:
                break
            logits = self.model.forward(batch.dense, batch.sparse)
            all_logits.append(np.asarray(logits))
            all_labels.append(np.asarray(batch.labels))
        if not all_logits:
            raise ValueError("evaluate received no batches")
        logits = np.concatenate(all_logits)
        labels = np.concatenate(all_labels)
        return EvalResult(
            accuracy=accuracy(logits, labels),
            bce=bce_loss(logits, labels),
            auc=roc_auc(logits, labels),
            num_samples=logits.size,
            ne=normalized_entropy(logits, labels),
        )
