"""Training/evaluation driver for DLRM-style models.

One :class:`Trainer` owns a model, an optimizer and a data source, and
provides the timed training loop every timing experiment (Fig. 7, Fig. 10)
builds on. The loop accounts wall-clock per stage — data fetch, forward,
backward, optimizer, checkpointing — surfaced on
:class:`TrainResult` (``stage_time_s``, ``per_iter_ms``,
``ms_per_iter``/``ms_per_iter_steady``, ``timing_breakdown()``), and opens
telemetry spans (``trainer.forward`` etc., see :mod:`repro.telemetry`)
around the same stages so ``repro profile`` can show where iteration time
goes. The overall ``ms_per_iter`` mirrors the paper's numbers.

The loop is fault-tolerant when asked to be (see
:mod:`repro.reliability`): a :class:`~repro.reliability.guard.DivergenceGuard`
replaces the fail-fast :class:`FloatingPointError` with a bounded
skip/backoff/rollback policy, a
:class:`~repro.reliability.fault_injection.FaultInjector` can corrupt the
loss gradient at the ``trainer.grad`` site for chaos testing, and
``train(..., checkpoint_every=, checkpoint_dir=, resume_from=)`` makes a
killed run resumable bit-for-bit: the resumed loop replays (consumes
without training) the already-trained prefix of the batch stream so the
data RNG advances identically, then continues from the restored model,
optimizer and RNG state.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from time import perf_counter_ns

import numpy as np

from repro.data.batching import Batch
from repro.models.dlrm import DLRM
from repro.ops.loss import bce_with_logits
from repro.ops.optim import SparseSGD
from repro.telemetry import emit_event, trace
from repro.training.metrics import accuracy, bce_loss, normalized_entropy, roc_auc

__all__ = ["Trainer", "TrainResult", "EvalResult"]

# The per-iteration stages the trainer accounts separately.
STAGES = ("data", "forward", "backward", "optimizer", "checkpoint")


@dataclass
class TrainResult:
    """Summary of one training run."""

    iterations: int = 0
    total_time_s: float = 0.0
    losses: list[float] = field(default_factory=list)
    skipped: int = 0       # batches the divergence guard refused to apply
    rollbacks: int = 0     # checkpoint restores triggered by loss spikes
    start_iteration: int = 0  # > 0 when the run resumed from a checkpoint
    # Wall-clock of each applied iteration (data fetch + forward + backward
    # + optimizer), and cumulative per-stage seconds over the whole run.
    per_iter_ms: list[float] = field(default_factory=list)
    stage_time_s: dict[str, float] = field(default_factory=dict)

    @property
    def ms_per_iter(self) -> float:
        """Mean wall-clock per iteration *executed by this call* (resumed
        iterations restored from a checkpoint carry no time). Includes the
        first iteration's warm-up cost; see :attr:`ms_per_iter_steady`."""
        executed = self.iterations - self.start_iteration
        return 1000.0 * self.total_time_s / executed if executed > 0 else 0.0

    @property
    def ms_per_iter_steady(self) -> float:
        """Steady-state mean ms/iter: the first executed iteration is
        excluded, since it alone pays allocator growth, first-touch page
        faults and BLAS thread-pool spin-up and skews short runs."""
        if len(self.per_iter_ms) > 1:
            return float(np.mean(self.per_iter_ms[1:]))
        return self.ms_per_iter

    def timing_breakdown(self) -> dict[str, float]:
        """Per-stage mean ms/iter (plus ``other``: loop bookkeeping,
        guard checks, replay) over the iterations executed by this call."""
        executed = self.iterations - self.start_iteration
        if executed <= 0:
            return {}
        out = {stage: 1000.0 * self.stage_time_s.get(stage, 0.0) / executed
               for stage in STAGES}
        accounted = sum(self.stage_time_s.values())
        out["other"] = 1000.0 * max(0.0, self.total_time_s - accounted) / executed
        return out

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    def smoothed_loss(self, window: int = 50) -> float:
        """Mean loss over the trailing window (noise-robust progress signal)."""
        if not self.losses:
            return float("nan")
        return float(np.mean(self.losses[-window:]))


@dataclass
class EvalResult:
    """Validation metrics over a held-out sample stream."""

    accuracy: float
    bce: float
    auc: float
    num_samples: int
    ne: float = float("nan")  # normalized entropy (He et al. 2014)

    def __str__(self) -> str:  # pragma: no cover - formatting
        return (
            f"acc={self.accuracy * 100:.3f}% bce={self.bce:.4f} "
            f"auc={self.auc:.4f} ne={self.ne:.4f} (n={self.num_samples})"
        )


class Trainer:
    """Minibatch trainer with BCE-with-logits loss.

    Parameters
    ----------
    model:
        A :class:`~repro.models.dlrm.DLRM` (baseline or TT-Rec variant).
    lr:
        SGD learning rate (MLPerf-DLRM Kaggle default 0.1).
    optimizer:
        Optional pre-built optimizer; defaults to
        :class:`~repro.ops.optim.SparseSGD` over the model's parameters.
    guard:
        Optional :class:`~repro.reliability.guard.DivergenceGuard`. With a
        guard, non-finite losses/gradients follow its recovery policy
        instead of raising :class:`FloatingPointError`.
    injector:
        Optional :class:`~repro.reliability.fault_injection.FaultInjector`
        probed at the ``trainer.grad`` site each step (chaos testing).
    rng:
        Optional :class:`numpy.random.Generator` whose state is saved in
        checkpoints and restored on resume (hand in the generator driving
        the data stream when it lives outside the batch iterable).
    """

    def __init__(self, model: DLRM, *, lr: float = 0.1, optimizer=None,
                 guard=None, injector=None,
                 rng: np.random.Generator | None = None):
        self.model = model
        self.optimizer = optimizer if optimizer is not None else SparseSGD(
            model.parameters(), lr=lr
        )
        self.guard = guard
        self.injector = injector
        self.rng = rng
        self.last_step_skipped = False
        # Stage seconds of the most recent train_step (data time is added
        # by the train loop, which owns the batch iterator).
        self.last_step_timings: dict[str, float] = {}

    def train_step(self, batch: Batch) -> float:
        """One forward/backward/update step; returns the batch loss.

        Without a guard, raises :class:`FloatingPointError` if the loss is
        NaN/inf — catching divergence at the step it happens instead of
        corrupting every parameter and failing silently later. With a
        guard, a non-finite loss or loss-gradient makes this a no-op step
        (``last_step_skipped`` is set) and the guard's recovery policy
        runs instead.
        """
        self.last_step_skipped = False
        t0 = perf_counter_ns()
        self.optimizer.zero_grad()
        with trace("trainer.forward"):
            logits = self.model.forward(
                batch.dense, batch.sparse, batch.per_sample_weights
            )
            loss, grad = bce_with_logits(logits, batch.labels)
        t1 = perf_counter_ns()
        if self.injector is not None:
            self.injector.corrupt("trainer.grad", grad)
        if self.guard is not None:
            if not self.guard.admit(loss, grad, model=self.model,
                                    optimizer=self.optimizer):
                self.last_step_skipped = True
                self.last_step_timings = {
                    "forward": (t1 - t0) / 1e9, "backward": 0.0,
                    "optimizer": 0.0,
                }
                return float(loss)
        elif not np.isfinite(loss):
            raise FloatingPointError(
                f"training diverged: loss={loss!r}; lower the learning rate "
                "or check the input data for non-finite values"
            )
        with trace("trainer.backward"):
            self.model.backward(grad)
        t2 = perf_counter_ns()
        with trace("trainer.optimizer"):
            self.optimizer.step()
        t3 = perf_counter_ns()
        self.last_step_timings = {
            "forward": (t1 - t0) / 1e9,
            "backward": (t2 - t1) / 1e9,
            "optimizer": (t3 - t2) / 1e9,
        }
        return loss

    def train(self, batches, *, max_iters: int | None = None,
              log_every: int | None = None, log_fn=print,
              checkpoint_every: int | None = None,
              checkpoint_dir: str | os.PathLike | None = None,
              keep_checkpoints: int = 3,
              resume_from=None) -> TrainResult:
        """Train over an iterable of batches, timing the whole loop.

        Parameters
        ----------
        checkpoint_every, checkpoint_dir:
            Write an atomic checkpoint (model + optimizer + RNG + loss
            history) every ``checkpoint_every`` iterations into
            ``checkpoint_dir``, keeping the newest ``keep_checkpoints``.
        resume_from:
            Checkpoint directory (or a prepared
            :class:`~repro.reliability.checkpoint.CheckpointManager`) to
            resume from. The newest valid checkpoint is restored and the
            first ``step`` batches of the stream are consumed untrained,
            so passing the same freshly-constructed batch iterable
            reproduces the uninterrupted run bit-for-bit. ``max_iters``
            keeps counting from the start of the stream.
        """
        from repro.reliability.checkpoint import CheckpointManager

        manager = None
        if checkpoint_dir is not None:
            manager = CheckpointManager(checkpoint_dir, keep=keep_checkpoints)
        elif checkpoint_every is not None:
            raise ValueError("checkpoint_every requires checkpoint_dir")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )

        result = TrainResult()
        if resume_from is not None:
            if isinstance(resume_from, CheckpointManager):
                resume_mgr = resume_from
            else:
                resume_mgr = CheckpointManager(resume_from, keep=keep_checkpoints)
            ck = resume_mgr.restore(self.model, optimizer=self.optimizer,
                                    rng=self.rng)
            result.start_iteration = ck.step
            result.iterations = ck.step
            result.losses = ck.losses

        stage = dict.fromkeys(STAGES, 0.0)
        start = time.perf_counter()
        stream = iter(batches)
        i = 0
        while max_iters is None or i < max_iters:
            t_fetch = perf_counter_ns()
            with trace("trainer.data"):
                try:
                    batch = next(stream)
                except StopIteration:
                    break
            data_s = (perf_counter_ns() - t_fetch) / 1e9
            if i < result.start_iteration:
                i += 1
                continue  # replay: consume the stream to advance its RNG
            stage["data"] += data_s
            loss = self.train_step(batch)
            step = self.last_step_timings
            for key in ("forward", "backward", "optimizer"):
                stage[key] += step.get(key, 0.0)
            if self.last_step_skipped:
                result.skipped += 1
            else:
                result.losses.append(loss)
                result.iterations += 1
                result.per_iter_ms.append(1000.0 * (
                    data_s + step.get("forward", 0.0)
                    + step.get("backward", 0.0) + step.get("optimizer", 0.0)
                ))
            if log_every and (i + 1) % log_every == 0:
                log_fn(
                    f"iter {i + 1}: loss={np.mean(result.losses[-log_every:]):.4f}"
                )
            if (self.guard is not None and manager is not None
                    and self.guard.wants_rollback(result.losses)):
                ck = manager.restore(self.model, optimizer=self.optimizer,
                                     rng=self.rng)
                result.losses = ck.losses
                result.rollbacks += 1
                self.guard.notify_rollback()
                emit_event("trainer.rollback", step=i + 1,
                           restored_step=ck.step)
            if (checkpoint_every is not None
                    and (i + 1) % checkpoint_every == 0):
                t_ck = perf_counter_ns()
                with trace("trainer.checkpoint"):
                    manager.save(i + 1, self.model, optimizer=self.optimizer,
                                 rng=self.rng, losses=result.losses)
                stage["checkpoint"] += (perf_counter_ns() - t_ck) / 1e9
                emit_event("checkpoint.save", step=i + 1)
            i += 1
        result.total_time_s = time.perf_counter() - start
        result.stage_time_s = stage
        return result

    def evaluate(self, batches, *, max_iters: int | None = None) -> EvalResult:
        """Forward-only evaluation accumulating accuracy/BCE/AUC.

        Uses the same forward as training — in particular, weighted-pooling
        models are evaluated with their ``per_sample_weights`` applied.
        """
        all_logits: list[np.ndarray] = []
        all_labels: list[np.ndarray] = []
        for i, batch in enumerate(batches):
            if max_iters is not None and i >= max_iters:
                break
            logits = self.model.forward(batch.dense, batch.sparse,
                                        batch.per_sample_weights)
            all_logits.append(np.asarray(logits))
            all_labels.append(np.asarray(batch.labels))
        if not all_logits:
            raise ValueError("evaluate received no batches")
        logits = np.concatenate(all_logits)
        labels = np.concatenate(all_labels)
        return EvalResult(
            accuracy=accuracy(logits, labels),
            bce=bce_loss(logits, labels),
            auc=roc_auc(logits, labels),
            num_samples=logits.size,
            ne=normalized_entropy(logits, labels),
        )
